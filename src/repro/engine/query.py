"""Query descriptions and results: the engine's declarative surface.

A :class:`Query` is a declarative description of what to compute -- a base
table, a conjunction of predicates, an optional chain of equi-joins, an
optional aggregate, LIMIT and projection.  It carries no execution state:
the planner (:mod:`repro.engine.planner`) chooses access paths and join
strategies for it, and the executor (:mod:`repro.engine.executor`) streams
its rows.  :class:`QueryResult` is the materialised outcome of one
execution: the rows (or the aggregate value) together with the simulated
I/O statistics that the paper's experiments measure.

Joins are expressed as left-deep chains: ``Query.select(...)`` names the
driving table and :meth:`Query.join` appends one joined table at a time,
each connected to the tables before it by one or more equality pairs
(:class:`JoinSpec`).  The textual rendering follows SQL::

    SELECT * FROM lineitem JOIN orders USING (orderkey)
        WHERE shipdate BETWEEN 100 AND 120

Queries, join specs and predicates are all plain immutable values, so one
query object can be planned and executed many times (the benchmarks rely on
this to compare access methods against each other).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Sequence

from repro.engine.predicates import Predicate, PredicateSet
from repro.storage.disk import IOBreakdown


@dataclass(frozen=True)
class Aggregate:
    """An aggregate over the selected rows.

    ``kind`` is one of ``count``, ``count_distinct``, ``sum``, ``avg``.
    ``expression`` is a column name or a callable computing a value per row
    (e.g. ``extendedprice * discount`` from the paper's Figure 3 query).
    """

    kind: str
    expression: str | Callable[[Mapping[str, Any]], Any] | None = None

    _KINDS = ("count", "count_distinct", "sum", "avg")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown aggregate kind {self.kind!r}")
        if self.kind != "count" and self.expression is None:
            raise ValueError(f"aggregate {self.kind!r} needs an expression")

    def _value(self, row: Mapping[str, Any]) -> Any:
        if callable(self.expression):
            return self.expression(row)
        return row[self.expression]

    def compute(self, rows: Sequence[Mapping[str, Any]]) -> Any:
        """Evaluate the aggregate over the matching rows."""
        if self.kind == "count":
            return len(rows)
        values = [self._value(row) for row in rows]
        if self.kind == "count_distinct":
            return len(set(values))
        if self.kind == "sum":
            return sum(values)
        if self.kind == "avg":
            return sum(values) / len(values) if values else None
        raise AssertionError("unreachable")

    @classmethod
    def count(cls) -> "Aggregate":
        return cls("count")

    @classmethod
    def count_distinct(cls, expression) -> "Aggregate":
        return cls("count_distinct", expression)

    @classmethod
    def avg(cls, expression) -> "Aggregate":
        return cls("avg", expression)

    @classmethod
    def sum(cls, expression) -> "Aggregate":
        return cls("sum", expression)


def _normalize_on(
    on: str | tuple[str, str] | Mapping[str, str] | Sequence[Any],
) -> tuple[tuple[str, str], ...]:
    """Normalise a join condition into ``((left_column, right_column), ...)``.

    Accepted forms:

    * ``"orderkey"`` -- same column name on both sides (SQL's ``USING``);
    * ``("custid", "id")`` -- one explicit ``(left, right)`` pair.  Only a
      *tuple* of exactly two strings is read this way, so a *list* of names
      keeps its ``USING`` meaning at every arity: ``["orderkey",
      "linenumber"]`` is two same-named keys, not a cross-column pair;
    * ``{"custid": "id", "region": "region"}`` -- several explicit pairs;
    * a list mixing column names and ``(left, right)`` tuples, e.g.
      ``[("custid", "id"), "region"]``.
    """
    if isinstance(on, str):
        return ((on, on),)
    if isinstance(on, Mapping):
        pairs = tuple((left, right) for left, right in on.items())
    elif (
        isinstance(on, tuple)
        and len(on) == 2
        and all(isinstance(item, str) for item in on)
    ):
        pairs = ((on[0], on[1]),)
    else:
        normalized = []
        for item in on:
            if isinstance(item, str):
                normalized.append((item, item))
                continue
            pair = tuple(item)
            if len(pair) != 2:
                raise ValueError(
                    f"a join key pair needs exactly (left, right) columns, got {item!r}"
                )
            normalized.append((pair[0], pair[1]))
        pairs = tuple(normalized)
    if not pairs:
        raise ValueError("a join needs at least one key pair")
    for left, right in pairs:
        if not isinstance(left, str) or not isinstance(right, str):
            raise TypeError("join keys must be column names")
    return pairs


@dataclass(frozen=True)
class JoinSpec:
    """One step of a left-deep equi-join chain.

    ``table`` is the joined (right-hand) table.  ``on`` holds the equality
    pairs ``(left_column, right_column)``: the left column comes from any
    table already in the chain, the right column from ``table``.
    ``predicates`` are local filters on the joined table; the planner pushes
    them into the inner access path, where they double as residual filters.
    """

    table: str
    on: tuple[tuple[str, str], ...]
    predicates: PredicateSet = field(default_factory=PredicateSet)

    def __post_init__(self) -> None:
        object.__setattr__(self, "on", _normalize_on(self.on))
        if isinstance(self.predicates, (list, tuple)):
            object.__setattr__(self, "predicates", PredicateSet(self.predicates))

    @property
    def left_columns(self) -> tuple[str, ...]:
        return tuple(left for left, _right in self.on)

    @property
    def right_columns(self) -> tuple[str, ...]:
        return tuple(right for _left, right in self.on)

    def describe(self) -> str:
        """The SQL rendering of this join step (``USING`` when names agree)."""
        if all(left == right for left, right in self.on):
            return f"JOIN {self.table} USING ({', '.join(self.left_columns)})"
        condition = " AND ".join(
            f"{left} = {self.table}.{right}" for left, right in self.on
        )
        return f"JOIN {self.table} ON {condition}"


@dataclass
class Query:
    """A declarative query: one driving table plus an optional join chain.

    ``limit`` caps the number of rows produced; the streaming executor stops
    sweeping heap pages (and, under a join, stops pulling outer rows) as soon
    as the cap is met.  ``projection`` names the columns kept in the output
    rows -- under a join they may come from any table in the chain (residual
    predicates still see every column).  Neither combines with an aggregate:
    aggregates consume the full matching row stream.

    A worked two-table example, end to end::

        >>> from repro.engine.database import Database
        >>> from repro.engine.predicates import Equals
        >>> from repro.engine.query import Query
        >>> db = Database()
        >>> _ = db.create_table("orders", columns=["orderid", "custid", "amount"])
        >>> _ = db.create_table("customers", columns=["custid", "name"])
        >>> _ = db.load("orders", [
        ...     {"orderid": 1, "custid": 7, "amount": 30.0},
        ...     {"orderid": 2, "custid": 8, "amount": 12.5},
        ...     {"orderid": 3, "custid": 7, "amount": 99.0},
        ... ])
        >>> _ = db.load("customers", [
        ...     {"custid": 7, "name": "ada"},
        ...     {"custid": 8, "name": "bob"},
        ... ])
        >>> query = Query.select("orders", Equals("custid", 7)).join(
        ...     "customers", on="custid")
        >>> query.describe()
        'SELECT * FROM orders JOIN customers USING (custid) WHERE custid = 7'
        >>> sorted(row["orderid"] for row in db.stream(query))
        [1, 3]
        >>> [row["name"] for row in db.stream(query, projection=["name"])]
        ['ada', 'ada']

    :meth:`join` returns a *new* query, so partially-built queries can be
    shared and extended (multi-way joins are left-deep chains of such steps).
    """

    table: str
    predicates: PredicateSet
    aggregate: Aggregate | None = None
    name: str = ""
    limit: int | None = None
    projection: tuple[str, ...] | None = None
    joins: tuple[JoinSpec, ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.predicates, (list, tuple)):
            self.predicates = PredicateSet(self.predicates)
        if self.limit is not None:
            if self.limit < 0:
                raise ValueError("limit must be non-negative")
            if self.aggregate is not None:
                raise ValueError("LIMIT cannot be combined with an aggregate")
        if self.projection is not None:
            if self.aggregate is not None:
                raise ValueError("a projection cannot be combined with an aggregate")
            self.projection = tuple(self.projection)
        self.joins = tuple(self.joins)

    @classmethod
    def select(
        cls,
        table: str,
        *predicates: Predicate,
        aggregate: Aggregate | None = None,
        name: str = "",
        limit: int | None = None,
        projection: Sequence[str] | None = None,
    ) -> "Query":
        """Build a query over ``table`` with ``predicates`` ANDed together."""
        return cls(
            table=table,
            predicates=PredicateSet(predicates),
            aggregate=aggregate,
            name=name,
            limit=limit,
            projection=tuple(projection) if projection is not None else None,
        )

    def join(
        self,
        table: str,
        on: str | tuple[str, str] | Mapping[str, str] | Sequence[Any],
        *predicates: Predicate,
    ) -> "Query":
        """A new query extending this one with an equi-join against ``table``.

        ``on`` names the join keys (see :func:`_normalize_on` for the accepted
        forms); ``predicates`` are local filters on the joined table, pushed
        down into whichever inner access path the planner picks.  Each table
        may appear once per chain -- self-joins would need column aliasing,
        which the row-merging executor does not provide.

        Because merged rows are plain ``{**outer, **inner}`` dicts, two
        tables sharing a column name that is *not* a same-named join key
        would silently resolve "inner wins".  The query object cannot see
        the table schemas, so :class:`~repro.engine.database.Database`
        performs that check when the join is planned for execution and
        raises a :class:`ValueError` naming the ambiguous columns.
        """
        if table == self.table or any(spec.table == table for spec in self.joins):
            raise ValueError(f"table {table!r} already appears in the join chain")
        spec = JoinSpec(table=table, on=on, predicates=PredicateSet(predicates))
        return replace(self, joins=self.joins + (spec,))

    @property
    def tables(self) -> tuple[str, ...]:
        """Every table in the chain, driving table first."""
        return (self.table, *(spec.table for spec in self.joins))

    def describe(self) -> str:
        """An SQL rendering of the query (joins, WHERE conjunction, LIMIT)."""
        select_list = "*"
        if self.aggregate is not None:
            expression = self.aggregate.expression
            if expression is None:
                expr = "*"
            elif isinstance(expression, str):
                expr = expression
            else:
                expr = "expr"
            select_list = f"{self.aggregate.kind.upper()}({expr})"
        elif self.projection is not None:
            select_list = ", ".join(self.projection)
        from_clause = " ".join(
            [self.table, *(spec.describe() for spec in self.joins)]
        )
        conditions = [
            predicate_set.describe()
            for predicate_set in (self.predicates, *(s.predicates for s in self.joins))
            if predicate_set
        ]
        where = " AND ".join(conditions) if conditions else "TRUE"
        sql = f"SELECT {select_list} FROM {from_clause} WHERE {where}"
        if self.limit is not None:
            sql += f" LIMIT {self.limit}"
        return sql


@dataclass
class QueryResult:
    """The outcome of executing one query.

    ``access_method`` names the plan root: one of the access-path names for
    single-table queries (``seq_scan``, ``cm_scan``, ...) or a join operator
    name (``nested_loop_join``, ``index_nested_loop_join``) for joins.  The
    counters (``rows_examined``, ``pages_visited``) aggregate over *every*
    input of the plan -- under a join they include both the outer sweep and
    all inner probes.
    """

    query: Query
    access_method: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    value: Any = None
    rows_examined: int = 0
    rows_matched: int = 0
    pages_visited: int = 0
    #: Inner-input probes performed by join operators (0 for scans): one per
    #: probe-side row per join step, whichever operator family ran.
    join_probes: int = 0
    #: Rows the root context emitted -- equals ``rows_matched`` for a drained
    #: result, but is the honest count when a LIMIT stopped the pipeline.
    rows_emitted: int = 0
    io: IOBreakdown = field(default_factory=IOBreakdown)
    elapsed_ms: float = 0.0
    estimated_cost_ms: float | None = None
    rewritten_sql: str | None = None

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ms / 1000.0

    @property
    def false_positive_rows(self) -> int:
        """Rows fetched but discarded by the residual filter."""
        return max(0, self.rows_examined - self.rows_matched)

    def summary(self) -> str:
        probes = f", {self.join_probes} probes" if self.join_probes else ""
        return (
            f"[{self.access_method}] {self.query.describe()} -> "
            f"{self.rows_matched} rows, {self.pages_visited} pages{probes}, "
            f"{self.elapsed_ms:.1f} ms simulated"
        )
