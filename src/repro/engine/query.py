"""Query descriptions and results: the engine's declarative surface.

A :class:`Query` is a declarative description of what to compute -- a base
table, a conjunction of predicates, an optional chain of equi-joins, an
optional aggregate, LIMIT and projection.  It carries no execution state:
the planner (:mod:`repro.engine.planner`) chooses access paths and join
strategies for it, and the executor (:mod:`repro.engine.executor`) streams
its rows.  :class:`QueryResult` is the materialised outcome of one
execution: the rows (or the aggregate value) together with the simulated
I/O statistics that the paper's experiments measure.

Joins are expressed as left-deep chains: ``Query.select(...)`` names the
driving table and :meth:`Query.join` appends one joined table at a time,
each connected to the tables before it by one or more equality pairs
(:class:`JoinSpec`).  The textual rendering follows SQL::

    SELECT * FROM lineitem JOIN orders USING (orderkey)
        WHERE shipdate BETWEEN 100 AND 120

Queries, join specs and predicates are all plain immutable values, so one
query object can be planned and executed many times (the benchmarks rely on
this to compare access methods against each other).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field, replace
from operator import itemgetter
from typing import Any, Callable, Mapping, Sequence

from repro.engine.predicates import Predicate, PredicateSet
from repro.storage.disk import IOBreakdown


class AggregateAccumulator:
    """Running state of one streaming aggregate computation.

    The executor's aggregation nodes feed rows in one at a time and read the
    result once the input is exhausted -- nothing but the accumulator state
    (a counter, a running sum, or the distinct-value set for
    ``count_distinct``) is ever buffered.
    """

    def __init__(self, aggregate: "Aggregate") -> None:
        self._aggregate = aggregate
        self._count = 0
        self._sum: Any = 0
        self._distinct: set[Any] | None = (
            set() if aggregate.kind == "count_distinct" else None
        )

    def add(self, row: Mapping[str, Any]) -> None:
        kind = self._aggregate.kind
        self._count += 1
        if kind == "count":
            return
        value = self._aggregate._value(row)
        if self._distinct is not None:
            self._distinct.add(value)
        else:
            self._sum = self._sum + value

    def add_batch(self, rows: Sequence[Mapping[str, Any]]) -> None:
        """Fold a whole batch into the running state.

        Equivalent to calling :meth:`add` once per row, with the per-row
        dispatch hoisted out of the loop: ``count`` reduces to one integer
        addition per batch, value extraction runs through a C-level
        ``map``/comprehension, and ``count_distinct`` updates its set in one
        call.  Sums accumulate left to right exactly as repeated :meth:`add`
        calls would, so floating-point results stay bit-identical between
        the row-at-a-time and batched executors.
        """
        aggregate = self._aggregate
        kind = aggregate.kind
        self._count += len(rows)
        if kind == "count":
            return
        expression = aggregate.expression
        if callable(expression):
            values = map(expression, rows)
        else:
            values = map(itemgetter(expression), rows)
        if self._distinct is not None:
            self._distinct.update(values)
        else:
            total = self._sum
            for value in values:
                total = total + value
            self._sum = total

    def result(self) -> Any:
        kind = self._aggregate.kind
        if kind == "count":
            return self._count
        if kind == "count_distinct":
            assert self._distinct is not None
            return len(self._distinct)
        if kind == "sum":
            return self._sum
        if kind == "avg":
            return self._sum / self._count if self._count else None
        raise AssertionError("unreachable")


class GroupedAccumulators:
    """Columnar hash-aggregation state: one running value per group key.

    The batched twin of a ``dict`` of per-group
    :class:`AggregateAccumulator` objects, with the per-row dispatch hoisted
    into per-kind batch kernels: ``count`` folds a whole batch through one
    ``Counter``; ``sum``/``avg`` add each value into its group's running
    total in stream order (value-at-a-time, so floating-point results stay
    bit-identical to per-row accumulation); ``count_distinct`` grows
    per-group value sets.  Group output order is first-seen input order --
    every kernel inserts keys into its dict in stream order, matching the
    per-accumulator dict of the row-at-a-time path.
    """

    __slots__ = ("_aggregate", "_kind", "_counts", "_sums", "_distinct")

    def __init__(self, aggregate: "Aggregate") -> None:
        self._aggregate = aggregate
        self._kind = aggregate.kind
        self._counts: dict[Any, int] = {}
        self._sums: dict[Any, Any] = {}
        self._distinct: defaultdict[Any, set[Any]] = defaultdict(set)

    def __len__(self) -> int:
        if self._kind == "count":
            return len(self._counts)
        if self._kind == "count_distinct":
            return len(self._distinct)
        return len(self._sums)

    def add_batch(
        self, keys: Sequence[Any], rows: Sequence[Mapping[str, Any]]
    ) -> None:
        """Fold one batch of ``(group key, row)`` pairs into the state."""
        kind = self._kind
        if kind == "count":
            counts = self._counts
            get = counts.get
            # Counter iterates keys in first-occurrence order, so new groups
            # enter ``counts`` exactly when their first row arrives.
            for key, count in Counter(keys).items():
                counts[key] = get(key, 0) + count
            return
        expression = self._aggregate.expression
        if callable(expression):
            values = map(expression, rows)
        else:
            values = map(itemgetter(expression), rows)
        if kind == "count_distinct":
            distinct = self._distinct
            for key, value in zip(keys, values):
                distinct[key].add(value)
            return
        sums = self._sums
        get = sums.get
        for key, value in zip(keys, values):
            sums[key] = get(key, 0) + value
        if kind == "avg":
            counts = self._counts
            cget = counts.get
            for key, count in Counter(keys).items():
                counts[key] = cget(key, 0) + count

    def partial_state(self) -> tuple[dict[Any, int], dict[Any, Any]]:
        """The mergeable state for partition-parallel aggregation.

        Returns the per-group counts plus the per-group running sums (or
        the per-group distinct-value sets for ``count_distinct``) -- plain
        dicts that cross a process boundary and merge via
        :meth:`absorb_partial`.
        """
        if self._kind == "count_distinct":
            return dict(self._counts), {
                key: set(values) for key, values in self._distinct.items()
            }
        return dict(self._counts), dict(self._sums)

    def absorb_partial(
        self, counts: Mapping[Any, int], partials: Mapping[Any, Any]
    ) -> None:
        """Merge one partition's :meth:`partial_state` into this state.

        Absorbing partitions in ascending order reproduces the serial
        first-seen group order.  Count and distinct merges are exact;
        per-group *float* sums may differ from the serial fold in their
        last ulps (the standard parallel-aggregation caveat).
        """
        own_counts = self._counts
        for key, count in counts.items():
            own_counts[key] = own_counts.get(key, 0) + count
        if self._kind == "count_distinct":
            distinct = self._distinct
            for key, values in partials.items():
                distinct[key].update(values)
        else:
            sums = self._sums
            for key, partial in partials.items():
                sums[key] = sums.get(key, 0) + partial

    def results(self) -> Sequence[tuple[Any, Any]]:
        """``(group key, aggregate value)`` pairs in first-seen key order."""
        kind = self._kind
        if kind == "count":
            return list(self._counts.items())
        if kind == "count_distinct":
            return [(key, len(values)) for key, values in self._distinct.items()]
        if kind == "sum":
            return list(self._sums.items())
        counts = self._counts
        return [(key, total / counts[key]) for key, total in self._sums.items()]


@dataclass(frozen=True)
class Aggregate:
    """An aggregate over the selected rows.

    ``kind`` is one of ``count``, ``count_distinct``, ``sum``, ``avg``.
    ``expression`` is a column name or a callable computing a value per row
    (e.g. ``extendedprice * discount`` from the paper's Figure 3 query).
    ``alias`` names the output column of grouped queries (and of the
    aggregation node in EXPLAIN); it defaults to ``kind`` or
    ``kind_expression`` for string expressions.
    """

    kind: str
    expression: str | Callable[[Mapping[str, Any]], Any] | None = None
    alias: str | None = None

    _KINDS = ("count", "count_distinct", "sum", "avg")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown aggregate kind {self.kind!r}")
        if self.kind != "count" and self.expression is None:
            raise ValueError(f"aggregate {self.kind!r} needs an expression")

    @property
    def output_name(self) -> str:
        """The column name the aggregate value appears under in grouped rows."""
        if self.alias:
            return self.alias
        if isinstance(self.expression, str):
            return f"{self.kind}_{self.expression}"
        return self.kind

    def _value(self, row: Mapping[str, Any]) -> Any:
        if callable(self.expression):
            return self.expression(row)
        return row[self.expression]

    def make_accumulator(self) -> AggregateAccumulator:
        """Fresh running state for one streaming computation of this aggregate."""
        return AggregateAccumulator(self)

    def make_grouped(self) -> GroupedAccumulators:
        """Fresh columnar per-group state for one hash aggregation."""
        return GroupedAccumulators(self)

    def compute(self, rows: Sequence[Mapping[str, Any]]) -> Any:
        """Evaluate the aggregate over already-materialised rows.

        Kept as the reference implementation (and for callers holding a row
        list); query execution streams through :meth:`make_accumulator`
        instead of materialising the input.
        """
        accumulator = self.make_accumulator()
        for row in rows:
            accumulator.add(row)
        return accumulator.result()

    @classmethod
    def count(cls, *, alias: str | None = None) -> "Aggregate":
        return cls("count", alias=alias)

    @classmethod
    def count_distinct(
        cls, expression: str | Callable[[Mapping[str, Any]], Any], *, alias: str | None = None
    ) -> "Aggregate":
        return cls("count_distinct", expression, alias=alias)

    @classmethod
    def avg(
        cls, expression: str | Callable[[Mapping[str, Any]], Any], *, alias: str | None = None
    ) -> "Aggregate":
        return cls("avg", expression, alias=alias)

    @classmethod
    def sum(
        cls, expression: str | Callable[[Mapping[str, Any]], Any], *, alias: str | None = None
    ) -> "Aggregate":
        return cls("sum", expression, alias=alias)


def _normalize_on(
    on: str | tuple[str, str] | Mapping[str, str] | Sequence[Any],
) -> tuple[tuple[str, str], ...]:
    """Normalise a join condition into ``((left_column, right_column), ...)``.

    Accepted forms:

    * ``"orderkey"`` -- same column name on both sides (SQL's ``USING``);
    * ``("custid", "id")`` -- one explicit ``(left, right)`` pair.  Only a
      *tuple* of exactly two strings is read this way, so a *list* of names
      keeps its ``USING`` meaning at every arity: ``["orderkey",
      "linenumber"]`` is two same-named keys, not a cross-column pair;
    * ``{"custid": "id", "region": "region"}`` -- several explicit pairs;
    * a list mixing column names and ``(left, right)`` tuples, e.g.
      ``[("custid", "id"), "region"]``.
    """
    if isinstance(on, str):
        return ((on, on),)
    if isinstance(on, Mapping):
        pairs = tuple((left, right) for left, right in on.items())
    elif (
        isinstance(on, tuple)
        and len(on) == 2
        and all(isinstance(item, str) for item in on)
    ):
        pairs = ((on[0], on[1]),)
    else:
        normalized = []
        for item in on:
            if isinstance(item, str):
                normalized.append((item, item))
                continue
            pair = tuple(item)
            if len(pair) != 2:
                raise ValueError(
                    f"a join key pair needs exactly (left, right) columns, got {item!r}"
                )
            normalized.append((pair[0], pair[1]))
        pairs = tuple(normalized)
    if not pairs:
        raise ValueError("a join needs at least one key pair")
    for left, right in pairs:
        if not isinstance(left, str) or not isinstance(right, str):
            raise TypeError("join keys must be column names")
    return pairs


def _normalize_ordering(
    columns: Sequence[Any],
) -> tuple[tuple[str, bool], ...]:
    """Normalise ORDER BY columns into ``((column, ascending), ...)``.

    Accepted forms per entry: a plain column name (ascending), a name
    prefixed with ``-`` (descending, SQL's ``DESC``), or an explicit
    ``(column, ascending)`` pair.
    """
    normalized: list[tuple[str, bool]] = []
    for item in columns:
        if isinstance(item, str):
            if item.startswith("-"):
                normalized.append((item[1:], False))
            else:
                normalized.append((item, True))
            continue
        pair = tuple(item)
        if len(pair) != 2 or not isinstance(pair[0], str):
            raise ValueError(
                f"an ORDER BY entry is a column name or (column, ascending), got {item!r}"
            )
        normalized.append((pair[0], bool(pair[1])))
    for column, _ascending in normalized:
        if not column:
            raise ValueError("ORDER BY column names must be non-empty")
    return tuple(normalized)


@dataclass(frozen=True)
class JoinSpec:
    """One step of a left-deep equi-join chain.

    ``table`` is the joined (right-hand) table.  ``on`` holds the equality
    pairs ``(left_column, right_column)``: the left column comes from any
    table already in the chain, the right column from ``table``.
    ``predicates`` are local filters on the joined table; the planner pushes
    them into the inner access path, where they double as residual filters.
    """

    table: str
    on: tuple[tuple[str, str], ...]
    predicates: PredicateSet = field(default_factory=PredicateSet)

    def __post_init__(self) -> None:
        object.__setattr__(self, "on", _normalize_on(self.on))
        if isinstance(self.predicates, (list, tuple)):
            object.__setattr__(self, "predicates", PredicateSet(self.predicates))

    @property
    def left_columns(self) -> tuple[str, ...]:
        return tuple(left for left, _right in self.on)

    @property
    def right_columns(self) -> tuple[str, ...]:
        return tuple(right for _left, right in self.on)

    def describe(self) -> str:
        """The SQL rendering of this join step (``USING`` when names agree)."""
        if all(left == right for left, right in self.on):
            return f"JOIN {self.table} USING ({', '.join(self.left_columns)})"
        condition = " AND ".join(
            f"{left} = {self.table}.{right}" for left, right in self.on
        )
        return f"JOIN {self.table} ON {condition}"


@dataclass
class Query:
    """A declarative query: one driving table plus an optional join chain.

    ``limit`` caps the number of rows produced; the streaming executor stops
    sweeping heap pages (and, under a join, stops pulling outer rows) as soon
    as the cap is met.  ``projection`` names the columns kept in the output
    rows -- under a join they may come from any table in the chain (residual
    predicates still see every column).  ``ordering`` (built with
    :meth:`order_by`) sorts the output; combined with ``limit`` it executes
    as a bounded k-heap top-k instead of a full sort.  ``grouping`` (built
    with :meth:`group_by`) turns the aggregate into a hash aggregation with
    one output row per group; grouped queries may carry a LIMIT (it caps the
    number of groups) and a projection over the group columns and the
    aggregate's output column.  A *scalar* aggregate still combines with
    neither: it reduces the full matching stream to a single value.

    A worked two-table example, end to end::

        >>> from repro.engine.database import Database
        >>> from repro.engine.predicates import Equals
        >>> from repro.engine.query import Query
        >>> db = Database()
        >>> _ = db.create_table("orders", columns=["orderid", "custid", "amount"])
        >>> _ = db.create_table("customers", columns=["custid", "name"])
        >>> _ = db.load("orders", [
        ...     {"orderid": 1, "custid": 7, "amount": 30.0},
        ...     {"orderid": 2, "custid": 8, "amount": 12.5},
        ...     {"orderid": 3, "custid": 7, "amount": 99.0},
        ... ])
        >>> _ = db.load("customers", [
        ...     {"custid": 7, "name": "ada"},
        ...     {"custid": 8, "name": "bob"},
        ... ])
        >>> query = Query.select("orders", Equals("custid", 7)).join(
        ...     "customers", on="custid")
        >>> query.describe()
        'SELECT * FROM orders JOIN customers USING (custid) WHERE custid = 7'
        >>> sorted(row["orderid"] for row in db.stream(query))
        [1, 3]
        >>> [row["name"] for row in db.stream(query, projection=["name"])]
        ['ada', 'ada']

    :meth:`join` returns a *new* query, so partially-built queries can be
    shared and extended (multi-way joins are left-deep chains of such steps).
    """

    table: str
    predicates: PredicateSet
    aggregate: Aggregate | None = None
    name: str = ""
    limit: int | None = None
    projection: tuple[str, ...] | None = None
    joins: tuple[JoinSpec, ...] = ()
    #: ORDER BY as ``((column, ascending), ...)`` -- see :meth:`order_by`.
    ordering: tuple[tuple[str, bool], ...] = ()
    #: GROUP BY columns -- see :meth:`group_by`.
    grouping: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.predicates, (list, tuple)):
            self.predicates = PredicateSet(self.predicates)
        self.ordering = _normalize_ordering(self.ordering)
        self.grouping = tuple(self.grouping)
        if self.grouping and self.aggregate is None:
            raise ValueError("GROUP BY needs an aggregate to compute per group")
        scalar_aggregate = self.aggregate is not None and not self.grouping
        if self.limit is not None:
            if self.limit < 0:
                raise ValueError("limit must be non-negative")
            if scalar_aggregate:
                raise ValueError(
                    "LIMIT cannot be combined with a scalar aggregate "
                    "(group the query to cap the number of groups)"
                )
        if self.projection is not None:
            if scalar_aggregate:
                raise ValueError(
                    "a projection cannot be combined with a scalar aggregate"
                )
            self.projection = tuple(self.projection)
        if self.grouping and self.aggregate.output_name in self.grouping:
            raise ValueError(
                f"aggregate output column {self.aggregate.output_name!r} "
                "collides with a GROUP BY column; set a different alias"
            )
        if self.grouping and self.projection is not None:
            allowed = set(self.grouping) | {self.aggregate.output_name}
            unknown = [c for c in self.projection if c not in allowed]
            if unknown:
                raise ValueError(
                    f"projection columns {unknown} are not in the GROUP BY "
                    f"output (group columns plus {self.aggregate.output_name!r})"
                )
        if self.ordering and self.aggregate is not None and not self.grouping:
            raise ValueError("ORDER BY is meaningless for a scalar aggregate")
        self.joins = tuple(self.joins)

    @classmethod
    def select(
        cls,
        table: str,
        *predicates: Predicate,
        aggregate: Aggregate | None = None,
        name: str = "",
        limit: int | None = None,
        projection: Sequence[str] | None = None,
        order_by: Sequence[Any] | None = None,
        group_by: Sequence[str] | None = None,
    ) -> "Query":
        """Build a query over ``table`` with ``predicates`` ANDed together."""
        return cls(
            table=table,
            predicates=PredicateSet(predicates),
            aggregate=aggregate,
            name=name,
            limit=limit,
            projection=tuple(projection) if projection is not None else None,
            ordering=_normalize_ordering(order_by) if order_by is not None else (),
            grouping=tuple(group_by) if group_by is not None else (),
        )

    def order_by(self, *columns: Any) -> "Query":
        """A new query sorting the output by ``columns``.

        Each entry is a column name (ascending), a ``-``-prefixed name
        (descending), or an explicit ``(column, ascending)`` pair.  NULLs
        sort last ascending and first descending, as in PostgreSQL.
        Combined with a LIMIT (see :meth:`with_limit`) the plan uses a
        bounded k-heap top-k instead of a full sort; when the chosen stream
        already flows in the requested order (a scan of a table clustered on
        the sort column, a merge join on it) the sort is planned away
        entirely.

            >>> Query.select("items").order_by("price", "-catid").describe()
            'SELECT * FROM items WHERE TRUE ORDER BY price, catid DESC'
        """
        return replace(self, ordering=_normalize_ordering(columns))

    def group_by(self, *columns: str) -> "Query":
        """A new query hash-aggregating per distinct ``columns`` combination.

        The query must carry an aggregate; each output row holds the group
        columns plus the aggregate value under
        :attr:`Aggregate.output_name`.

            >>> Query.select("items", aggregate=Aggregate.count()).group_by(
            ...     "catid").describe()
            'SELECT catid, COUNT(*) FROM items WHERE TRUE GROUP BY catid'
        """
        return replace(self, grouping=tuple(columns))

    def with_limit(self, limit: int | None) -> "Query":
        """A new query capped at ``limit`` rows (``None`` removes the cap).

        (A ``limit()`` builder method would collide with the ``limit``
        field, which the rest of the engine reads directly.)
        """
        return replace(self, limit=limit)

    def join(
        self,
        table: str,
        on: str | tuple[str, str] | Mapping[str, str] | Sequence[Any],
        *predicates: Predicate,
    ) -> "Query":
        """A new query extending this one with an equi-join against ``table``.

        ``on`` names the join keys (see :func:`_normalize_on` for the accepted
        forms); ``predicates`` are local filters on the joined table, pushed
        down into whichever inner access path the planner picks.  Each table
        may appear once per chain -- self-joins would need column aliasing,
        which the row-merging executor does not provide.

        Because merged rows are plain ``{**outer, **inner}`` dicts, two
        tables sharing a column name that is *not* a same-named join key
        would silently resolve "inner wins".  The query object cannot see
        the table schemas, so :class:`~repro.engine.database.Database`
        performs that check when the join is planned for execution and
        raises a :class:`ValueError` naming the ambiguous columns.
        """
        if table == self.table or any(spec.table == table for spec in self.joins):
            raise ValueError(f"table {table!r} already appears in the join chain")
        spec = JoinSpec(table=table, on=on, predicates=PredicateSet(predicates))
        return replace(self, joins=self.joins + (spec,))

    @property
    def tables(self) -> tuple[str, ...]:
        """Every table in the chain, driving table first."""
        return (self.table, *(spec.table for spec in self.joins))

    def describe(self) -> str:
        """An SQL rendering (joins, WHERE, GROUP BY, ORDER BY, LIMIT)."""
        select_list = "*"
        if self.aggregate is not None:
            expression = self.aggregate.expression
            if expression is None:
                expr = "*"
            elif isinstance(expression, str):
                expr = expression
            else:
                expr = "expr"
            select_list = f"{self.aggregate.kind.upper()}({expr})"
            if self.grouping:
                select_list = f"{', '.join(self.grouping)}, {select_list}"
        elif self.projection is not None:
            select_list = ", ".join(self.projection)
        from_clause = " ".join(
            [self.table, *(spec.describe() for spec in self.joins)]
        )
        conditions = [
            predicate_set.describe()
            for predicate_set in (self.predicates, *(s.predicates for s in self.joins))
            if predicate_set
        ]
        where = " AND ".join(conditions) if conditions else "TRUE"
        sql = f"SELECT {select_list} FROM {from_clause} WHERE {where}"
        if self.grouping:
            sql += f" GROUP BY {', '.join(self.grouping)}"
        if self.ordering:
            rendered = ", ".join(
                column if ascending else f"{column} DESC"
                for column, ascending in self.ordering
            )
            sql += f" ORDER BY {rendered}"
        if self.limit is not None:
            sql += f" LIMIT {self.limit}"
        return sql


@dataclass
class QueryResult:
    """The outcome of executing one query.

    ``access_method`` names the plan root: one of the access-path names for
    single-table queries (``seq_scan``, ``cm_scan``, ...) or a join operator
    name (``nested_loop_join``, ``index_nested_loop_join``) for joins.  The
    counters (``rows_examined``, ``pages_visited``) aggregate over *every*
    input of the plan -- under a join they include both the outer sweep and
    all inner probes.
    """

    query: Query
    access_method: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    value: Any = None
    rows_examined: int = 0
    rows_matched: int = 0
    pages_visited: int = 0
    #: Inner-input probes performed by join operators (0 for scans): one per
    #: probe-side row per join step, whichever operator family ran.
    join_probes: int = 0
    #: Rows the plan root emitted -- equals ``rows_matched`` for a drained
    #: result, but is the honest count when a LIMIT stopped the pipeline.
    rows_emitted: int = 0
    io: IOBreakdown = field(default_factory=IOBreakdown)
    elapsed_ms: float = 0.0
    estimated_cost_ms: float | None = None
    rewritten_sql: str | None = None
    #: One-line description of the Sort/TopK work the plan performed, e.g.
    #: ``"top-5 heap over 1203 rows"`` or ``"sort buffered 1203 rows"``
    #: (``None`` when the plan sorted nothing).
    sort_stats: str | None = None
    #: The executed physical plan tree (a PlanNode), for EXPLAIN
    #: ANALYZE-style inspection of per-node counters.
    plan: Any = field(default=None, repr=False)

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ms / 1000.0

    @property
    def false_positive_rows(self) -> int:
        """Rows fetched but discarded by the residual filter."""
        return max(0, self.rows_examined - self.rows_matched)

    def summary(self) -> str:
        probes = f", {self.join_probes} probes" if self.join_probes else ""
        value = ""
        if self.query.aggregate is not None and not self.query.grouping:
            value = f", value={self.value}"
        sort = f", {self.sort_stats}" if self.sort_stats else ""
        return (
            f"[{self.access_method}] {self.query.describe()} -> "
            f"{self.rows_matched} rows, {self.pages_visited} pages"
            f"{probes}{value}{sort}, {self.elapsed_ms:.1f} ms simulated"
        )
