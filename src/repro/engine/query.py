"""Query descriptions and results.

Queries are declarative: a table, a conjunction of predicates and an optional
aggregate.  Results carry the rows (or the aggregate value) together with the
simulated I/O statistics of the execution, which is what the experiments
measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.engine.predicates import Predicate, PredicateSet
from repro.storage.disk import IOBreakdown


@dataclass(frozen=True)
class Aggregate:
    """An aggregate over the selected rows.

    ``kind`` is one of ``count``, ``count_distinct``, ``sum``, ``avg``.
    ``expression`` is a column name or a callable computing a value per row
    (e.g. ``extendedprice * discount`` from the paper's Figure 3 query).
    """

    kind: str
    expression: str | Callable[[Mapping[str, Any]], Any] | None = None

    _KINDS = ("count", "count_distinct", "sum", "avg")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown aggregate kind {self.kind!r}")
        if self.kind != "count" and self.expression is None:
            raise ValueError(f"aggregate {self.kind!r} needs an expression")

    def _value(self, row: Mapping[str, Any]) -> Any:
        if callable(self.expression):
            return self.expression(row)
        return row[self.expression]

    def compute(self, rows: Sequence[Mapping[str, Any]]) -> Any:
        """Evaluate the aggregate over the matching rows."""
        if self.kind == "count":
            return len(rows)
        values = [self._value(row) for row in rows]
        if self.kind == "count_distinct":
            return len(set(values))
        if self.kind == "sum":
            return sum(values)
        if self.kind == "avg":
            return sum(values) / len(values) if values else None
        raise AssertionError("unreachable")

    @classmethod
    def count(cls) -> "Aggregate":
        return cls("count")

    @classmethod
    def count_distinct(cls, expression) -> "Aggregate":
        return cls("count_distinct", expression)

    @classmethod
    def avg(cls, expression) -> "Aggregate":
        return cls("avg", expression)

    @classmethod
    def sum(cls, expression) -> "Aggregate":
        return cls("sum", expression)


@dataclass
class Query:
    """A selection (optionally aggregating) query over one table.

    ``limit`` caps the number of rows produced; the streaming executor stops
    sweeping heap pages as soon as the cap is met.  ``projection`` names the
    columns kept in the output rows (residual predicates still see every
    column).  Neither combines with an aggregate: aggregates consume the full
    matching row stream.
    """

    table: str
    predicates: PredicateSet
    aggregate: Aggregate | None = None
    name: str = ""
    limit: int | None = None
    projection: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if isinstance(self.predicates, (list, tuple)):
            self.predicates = PredicateSet(self.predicates)
        if self.limit is not None:
            if self.limit < 0:
                raise ValueError("limit must be non-negative")
            if self.aggregate is not None:
                raise ValueError("LIMIT cannot be combined with an aggregate")
        if self.projection is not None:
            if self.aggregate is not None:
                raise ValueError("a projection cannot be combined with an aggregate")
            self.projection = tuple(self.projection)

    @classmethod
    def select(
        cls,
        table: str,
        *predicates: Predicate,
        aggregate: Aggregate | None = None,
        name: str = "",
        limit: int | None = None,
        projection: Sequence[str] | None = None,
    ) -> "Query":
        return cls(
            table=table,
            predicates=PredicateSet(predicates),
            aggregate=aggregate,
            name=name,
            limit=limit,
            projection=tuple(projection) if projection is not None else None,
        )

    def describe(self) -> str:
        select_list = "*"
        if self.aggregate is not None:
            expression = self.aggregate.expression
            if expression is None:
                expr = "*"
            elif isinstance(expression, str):
                expr = expression
            else:
                expr = "expr"
            select_list = f"{self.aggregate.kind.upper()}({expr})"
        elif self.projection is not None:
            select_list = ", ".join(self.projection)
        sql = f"SELECT {select_list} FROM {self.table} WHERE {self.predicates.describe()}"
        if self.limit is not None:
            sql += f" LIMIT {self.limit}"
        return sql


@dataclass
class QueryResult:
    """The outcome of executing one query."""

    query: Query
    access_method: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    value: Any = None
    rows_examined: int = 0
    rows_matched: int = 0
    pages_visited: int = 0
    io: IOBreakdown = field(default_factory=IOBreakdown)
    elapsed_ms: float = 0.0
    estimated_cost_ms: float | None = None
    rewritten_sql: str | None = None

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ms / 1000.0

    @property
    def false_positive_rows(self) -> int:
        """Rows fetched but discarded by the residual filter."""
        return max(0, self.rows_examined - self.rows_matched)

    def summary(self) -> str:
        return (
            f"[{self.access_method}] {self.query.describe()} -> "
            f"{self.rows_matched} rows, {self.pages_visited} pages, "
            f"{self.elapsed_ms:.1f} ms simulated"
        )
