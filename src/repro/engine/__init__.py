"""Query processing engine built on the storage and index substrates.

The engine plays the role PostgreSQL plays in the paper's prototype: it owns
heap files, clustered and secondary B+Tree indexes, executes sequential,
pipelined, sorted (bitmap) and correlation-map scans, maintains all access
structures under inserts/deletes with write-ahead logging, and chooses access
paths with the correlation-aware cost model.

Beyond the single-query prototype it also serves queries *concurrently*: a
cooperative :class:`~repro.engine.scheduler.QueryScheduler` interleaves many
queries batch-by-batch over the shared buffer pool, and MVCC snapshots
(:mod:`repro.engine.transactions`) give each reader a consistent view while
transactions write new row versions.
"""

from repro.engine.schema import TableSchema
from repro.engine.predicates import Between, Equals, InSet, PredicateSet
from repro.engine.query import Aggregate, JoinSpec, Query, QueryResult
from repro.engine.database import Database
from repro.engine.scheduler import QueryScheduler, ScheduledQuery
from repro.engine.table import Table
from repro.engine.transactions import SerializationError, Snapshot, Transaction

__all__ = [
    "TableSchema",
    "Equals",
    "InSet",
    "Between",
    "PredicateSet",
    "Aggregate",
    "JoinSpec",
    "Query",
    "QueryResult",
    "Database",
    "QueryScheduler",
    "ScheduledQuery",
    "SerializationError",
    "Snapshot",
    "Table",
    "Transaction",
]
