"""Query processing engine built on the storage and index substrates.

The engine plays the role PostgreSQL plays in the paper's prototype: it owns
heap files, clustered and secondary B+Tree indexes, executes sequential,
pipelined, sorted (bitmap) and correlation-map scans, maintains all access
structures under inserts/deletes with write-ahead logging, and chooses access
paths with the correlation-aware cost model.
"""

from repro.engine.schema import TableSchema
from repro.engine.predicates import Between, Equals, InSet, PredicateSet
from repro.engine.query import Aggregate, JoinSpec, Query, QueryResult
from repro.engine.database import Database
from repro.engine.table import Table

__all__ = [
    "TableSchema",
    "Equals",
    "InSet",
    "Between",
    "PredicateSet",
    "Aggregate",
    "JoinSpec",
    "Query",
    "QueryResult",
    "Database",
    "Table",
]
