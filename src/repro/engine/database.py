"""The Database facade: the public entry point of the execution engine.

A :class:`Database` plays the role of the PostgreSQL instance plus the
Java front-end in the paper's prototype (Figure 5): it owns the simulated
disk, the buffer pool, the WAL, all tables with their indexes and correlation
maps, rewrites and executes queries, and maintains every structure under
inserts and deletes with transactional logging.

Typical use::

    db = Database(buffer_pool_pages=2_000)
    db.create_table("items", columns=["catid", "price", "itemid"])
    db.load("items", rows)
    db.cluster("items", "catid", pages_per_bucket=10)
    db.create_correlation_map("items", ["price"], bucketers={"price": WidthBucketer(64)})
    result = db.query(Query.select("items", Between("price", 1000, 1100)))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.core.bucketing import Bucketer
from repro.core.model import HardwareParameters
from repro.core.statistics import DEFAULT_STATS_SAMPLE_SIZE
from repro.engine.executor import (
    DEFAULT_BATCH_SIZE,
    ExecutionContext,
    PlanNode,
    RowBatch,
)
from repro.engine.partition import PartitionedTable, PartitionSpec
from repro.engine.planner import Planner
from repro.engine.predicates import Predicate, PredicateSet
from repro.engine.query import Query, QueryResult
from repro.engine.schema import TableSchema
from repro.engine.table import BUCKET_COLUMN, Table
from repro.engine.transactions import (
    XMAX_COLUMN,
    XMIN_COLUMN,
    SerializationError,
    Snapshot,
    Transaction,
    TransactionManager,
)
from repro.index.secondary import SecondaryIndex
from repro.core.correlation_map import CorrelationMap
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskModel, DiskParameters, IOBreakdown
from repro.storage.page import RID
from repro.storage.wal import WriteAheadLog

#: Default buffer pool size (in pages).  Scaled down together with the data
#: sets from the paper's 1 GB of RAM over multi-gigabyte tables.
DEFAULT_BUFFER_POOL_PAGES = 2_000


@dataclass
class MaintenanceResult:
    """Outcome of a batch of inserts or deletes."""

    rows_affected: int = 0
    elapsed_ms: float = 0.0
    pages_written: int = 0
    log_flushes: int = 0
    dirty_evictions: int = 0

    @property
    def rows_per_second(self) -> float:
        if self.elapsed_ms <= 0:
            return float("inf")
        return self.rows_affected / (self.elapsed_ms / 1000.0)


class Database:
    """An in-process analytical database engine with correlation maps."""

    def __init__(
        self,
        *,
        disk_params: DiskParameters | None = None,
        buffer_pool_pages: int = DEFAULT_BUFFER_POOL_PAGES,
        stats_sample_size: int = DEFAULT_STATS_SAMPLE_SIZE,
        stats_refresh_ops: int | None = None,
        batch_size: int | None = DEFAULT_BATCH_SIZE,
    ) -> None:
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be positive (or None for row-at-a-time)")
        self.disk = DiskModel(disk_params)
        #: Rows per batch pulled through the plan tree by :meth:`run_query`
        #: (scans align batches to page boundaries).  ``None`` executes
        #: row-at-a-time through ``iter_rows`` instead -- same results and
        #: bit-identical simulated I/O statistics, more interpreter overhead
        #: per row; the wall-clock benchmarks compare the two.
        self.batch_size = batch_size
        self.buffer_pool = BufferPool(self.disk, capacity_pages=buffer_pool_pages)
        self.wal = WriteAheadLog(self.disk)
        self.transactions = TransactionManager(self.wal)
        self.hardware = HardwareParameters.from_disk(self.disk.params)
        self.planner = Planner(self.hardware)
        self.stats_sample_size = stats_sample_size
        #: Re-seed each table's statistics (reservoir, bounds, caches) from a
        #: heap scan after this many inserts+deletes; ``None`` disables the
        #: periodic refresh policy (the default -- the incremental updates
        #: are exact while the sample is complete).
        self.stats_refresh_ops = stats_refresh_ops
        #: Whether join planning over partitioned tables may fall back to a
        #: repartitioning exchange (hash-splitting the build side into the
        #: outer table's partition layout).  With it off, a join whose only
        #: viable shape is the repartition -- incompatible layouts on both
        #: sides, no flat build side -- is rejected with an explicit error.
        self.enable_repartition = True
        self.tables: dict[str, Table | PartitionedTable] = {}

    # -- DDL ---------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        *,
        columns: Sequence[str] | None = None,
        schema: TableSchema | None = None,
        sample_row: Mapping[str, Any] | None = None,
        tups_per_page: int | None = None,
        partition_by: PartitionSpec | None = None,
    ) -> Table | PartitionedTable:
        """Create a table from a schema, a column list, or an example row.

        ``partition_by`` creates the table range- or hash-partitioned on the
        spec's key instead: one child heap per partition, each on its own
        simulated device (see :class:`~repro.engine.partition.
        PartitionedTable`).  Queries over it plan through partition pruning
        and an exchange fan-out; loads and inserts route rows by the key.
        """
        if name in self.tables:
            raise ValueError(f"table {name!r} already exists")
        if schema is None:
            if sample_row is not None:
                schema = TableSchema.infer(name, sample_row)
            elif columns is not None:
                schema = TableSchema.from_columns(name, columns)
            else:
                raise ValueError("provide a schema, columns, or a sample row")
        if partition_by is not None:
            partitioned = PartitionedTable(
                schema,
                partition_by,
                self.disk,
                buffer_pool_pages=self.buffer_pool.capacity_pages,
                tups_per_page=tups_per_page,
                stats_sample_size=self.stats_sample_size,
                stats_refresh_ops=self.stats_refresh_ops,
            )
            self.tables[name] = partitioned
            return partitioned
        table = Table(
            schema,
            self.buffer_pool,
            tups_per_page=tups_per_page,
            stats_sample_size=self.stats_sample_size,
            stats_refresh_ops=self.stats_refresh_ops,
        )
        self.tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        target = self.table(name)
        if isinstance(target, PartitionedTable):
            target.drop_caches()
        else:
            self.buffer_pool.drop_file(name)
        del self.tables[name]

    def table(self, name: str) -> Table | PartitionedTable:
        if name not in self.tables:
            raise KeyError(f"unknown table {name!r}")
        return self.tables[name]

    def load(self, name: str, rows: Iterable[Mapping[str, Any]]) -> int:
        """Bulk load rows into a table (initial population)."""
        return self.table(name).load(rows)

    def cluster(
        self, name: str, attribute: str, *, pages_per_bucket: int | None = None
    ) -> None:
        """CLUSTER the table on ``attribute`` (optionally assigning bucket ids)."""
        self.table(name).cluster_on(attribute, pages_per_bucket=pages_per_bucket)

    def create_secondary_index(
        self, table: str, attributes: Sequence[str] | str, *, name: str | None = None
    ) -> SecondaryIndex | None:
        """Create a secondary index (``None`` return for partitioned tables,
        which build one per-partition index instead of a single object)."""
        return self.table(table).create_secondary_index(attributes, name=name)

    def create_correlation_map(
        self,
        table: str,
        attributes: Sequence[str] | str,
        *,
        bucketers: Mapping[str, Bucketer] | None = None,
        name: str | None = None,
        use_clustered_buckets: bool = True,
    ) -> CorrelationMap | None:
        """Create a correlation map (``None`` return for partitioned tables,
        which build one per-partition CM instead of a single object)."""
        return self.table(table).create_correlation_map(
            attributes,
            bucketers=bucketers,
            name=name,
            use_clustered_buckets=use_clustered_buckets,
        )

    # -- queries -----------------------------------------------------------------------

    def run_query(
        self,
        query: Query,
        *,
        force: str | None = None,
        force_join: str | None = None,
        cold_cache: bool = False,
        limit: int | None = None,
        projection: Sequence[str] | None = None,
        snapshot: Snapshot | None = None,
        transaction: Transaction | None = None,
        parallel: int | None = None,
    ) -> QueryResult:
        """Plan and execute a query, returning rows/value plus I/O statistics.

        ``force`` pins the access method (one of the names in
        :data:`repro.engine.planner.FORCE_METHODS`); for a join query it pins
        the driving table's access path, and ``force_join`` pins the join
        strategy (:data:`repro.engine.planner.FORCE_JOIN_METHODS`).
        ``cold_cache=True`` empties the buffer pool first, matching the
        paper's methodology of dropping caches between measured runs.
        ``limit``/``projection`` override the query's own values; a satisfied
        LIMIT stops the plan's Limit node from pulling, which abandons every
        upstream generator so the remaining heap pages are never read.

        ``snapshot`` pins the MVCC visibility state the scan kernels filter
        against; ``transaction`` reads under that transaction's own snapshot
        (seeing its uncommitted writes).  With neither, a query over tables
        holding versioned rows runs under a fresh latest-committed snapshot
        -- and over unversioned tables the filter is skipped entirely, so
        pre-MVCC behaviour (and cost) is unchanged.

        Plan *selection* is LIMIT-aware: fully streaming candidates are
        costed for producing ``min(limit, estimated_result_rows)`` rows, so
        a very small LIMIT prefers a limit-terminated scan over a plan that
        pays many index descents up front.  A scalar aggregate consumes the
        whole matching stream (streamingly -- only the accumulator state is
        held), so ``limit``/``projection`` cannot combine with it; grouped
        aggregates accept both (the LIMIT caps the number of groups).

        ``parallel=N`` (N >= 2) executes the per-partition subtrees of a
        partitioned plan on a pool of N forked worker processes (see
        :mod:`repro.engine.parallel`); all simulated statistics stay
        bit-identical to the serial drain.  Plans the parallel path cannot
        reproduce exactly (no exchange node, fewer than two surviving
        partitions, or a LIMIT's early termination) fall back to serial.
        """
        from repro.engine.parallel import maybe_run_parallel
        from repro.engine.plan import exchange_devices

        if parallel is not None and parallel < 1:
            raise ValueError("parallel must be a positive worker count")
        plan = self._prepare(
            query, force=force, force_join=force_join, limit=limit, projection=projection
        )
        if cold_cache:
            self.drop_caches()
        devices = exchange_devices(plan)
        device_snaps = [(device, device.snapshot()) for device in devices]
        before = self.disk.snapshot()
        context = ExecutionContext(
            snapshot=self._effective_snapshot(snapshot, transaction, query)
        )
        rows: list[dict[str, Any]] | None = None
        if parallel is not None and parallel > 1:
            rows = maybe_run_parallel(self, plan, context, workers=parallel)
        if rows is None:
            rows = self._drain(plan, context)
        io = self.disk.window_since(before)
        for device, snap in device_snaps:
            io = io.add(device.window_since(snap))
        return self._build_result(query, plan, rows, context, io)

    def _drain(self, plan: PlanNode, context: ExecutionContext) -> list[dict[str, Any]]:
        """Pull every output row of ``plan``, batched or row-at-a-time.

        The batched pull is the default executor; rows leaving a scan-rooted
        plan are live heap-page dicts, so they are copied here before
        reaching callers -- exactly what the root context's ``emit`` does on
        the row-at-a-time path.
        """
        if self.batch_size is None:
            return list(plan.iter_rows(context))
        rows: list[dict[str, Any]] = []
        extend = rows.extend
        if plan.produces_fresh_rows:
            for batch in plan.iter_batches(context, self.batch_size):
                extend(batch)
        else:
            for batch in plan.iter_batches(context, self.batch_size):
                extend(map(dict, batch))
        return rows

    def _prepare(
        self,
        query: Query,
        *,
        force: str | None,
        force_join: str | None,
        limit: int | None,
        projection: Sequence[str] | None,
    ) -> PlanNode:
        """Shared run_query/stream preamble: coalesce overrides, validate, plan."""
        limit = query.limit if limit is None else limit
        projection = query.projection if projection is None else tuple(projection)
        scalar_aggregate = query.aggregate is not None and not query.grouping
        if scalar_aggregate and (limit is not None or projection is not None):
            raise ValueError(
                "limit/projection cannot be combined with a scalar aggregate: "
                "it reduces the full matching row stream to one value"
            )
        self._validate_query(query, projection)
        return self._plan(
            query,
            force=force,
            force_join=force_join,
            limit=limit,
            projection=projection,
        )

    def _effective_snapshot(
        self,
        snapshot: Snapshot | None,
        transaction: Transaction | None,
        query: Query,
    ) -> Snapshot | None:
        """The snapshot one execution filters visibility against.

        An explicit snapshot wins; a transaction reads under its own pinned
        snapshot; otherwise queries over versioned tables get a fresh
        latest-committed snapshot and fully unversioned queries get ``None``
        (no filtering -- the pre-MVCC fast path).
        """
        if snapshot is not None and transaction is not None:
            raise ValueError("pass either snapshot or transaction, not both")
        if snapshot is not None:
            return snapshot
        if transaction is not None:
            return transaction.snapshot
        if any(self.table(name).mvcc_versioned for name in query.tables):
            return self.transactions.snapshot()
        return None

    def _build_result(
        self,
        query: Query,
        plan: PlanNode,
        rows: list[dict[str, Any]],
        context: ExecutionContext,
        io: IOBreakdown,
    ) -> QueryResult:
        """Fold an executed plan tree into a :class:`QueryResult`."""
        from repro.engine.plan import AggregateNode, find_node, sort_stats

        totals = plan.total_counters()
        value = None
        rows_matched = len(rows)
        if query.aggregate is not None and not query.grouping:
            aggregate_node = find_node(plan, AggregateNode)
            value = aggregate_node.value
            #: The scalar aggregate's single synthetic row is not a result
            #: row; ``rows_matched`` reports the matching rows it consumed.
            rows_matched = aggregate_node.rows_in
            rows = []
        return QueryResult(
            query=query,
            access_method=plan.method,
            rows=rows,
            value=value,
            rows_examined=totals.rows_examined,
            rows_matched=rows_matched,
            pages_visited=totals.pages_visited,
            join_probes=totals.join_probes,
            rows_emitted=plan.actual.rows_out,
            io=io,
            elapsed_ms=io.elapsed_ms(self.disk.params),
            estimated_cost_ms=plan.estimated_cost_ms,
            rewritten_sql=context.rewritten_sql,
            sort_stats=sort_stats(plan),
            plan=plan,
        )

    def query(
        self,
        query: Query,
        *,
        force: str | None = None,
        cold_cache: bool = False,
    ) -> QueryResult:
        """Compatibility wrapper over :meth:`run_query`."""
        return self.run_query(query, force=force, cold_cache=cold_cache)

    def stream(
        self,
        query: Query,
        *,
        force: str | None = None,
        force_join: str | None = None,
        limit: int | None = None,
        projection: Sequence[str] | None = None,
        snapshot: Snapshot | None = None,
        transaction: Transaction | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Plan a query and yield matching rows as they are produced.

        Nothing is materialised: rows flow straight out of the plan's
        generator pipeline -- for joins, merged rows are produced as the
        outer scan and the inner probes interleave -- and abandoning the
        iterator stops every stage (pages past the last consumed row are
        never read).  A Sort/TopK in the plan buffers internally, but the
        surface stays the same generator.  Aggregating queries are rejected
        -- an aggregate needs the whole stream; use :meth:`run_query`.
        """
        if query.aggregate is not None:
            raise ValueError("stream() does not support aggregating queries")
        plan = self._prepare(
            query, force=force, force_join=force_join, limit=limit, projection=projection
        )
        return plan.iter_rows(
            ExecutionContext(
                snapshot=self._effective_snapshot(snapshot, transaction, query)
            )
        )

    def stream_batches(
        self,
        query: Query,
        *,
        force: str | None = None,
        force_join: str | None = None,
        limit: int | None = None,
        projection: Sequence[str] | None = None,
        batch_size: int | None = None,
        snapshot: Snapshot | None = None,
        transaction: Transaction | None = None,
    ) -> Iterator[RowBatch]:
        """Like :meth:`stream`, but yield :class:`RowBatch` objects.

        The batch-at-a-time twin of :meth:`stream`: batches flow straight
        out of the plan's ``iter_batches`` pipeline and abandoning the
        iterator stops every stage.  Rows of scan-rooted plans are copied
        before they leave, so callers may keep or mutate them freely.
        ``batch_size`` overrides the database default for this stream.
        """
        if query.aggregate is not None and not query.grouping:
            raise ValueError("stream_batches() does not support scalar aggregates")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be positive")
        size = batch_size if batch_size is not None else self.batch_size
        if size is None:
            size = DEFAULT_BATCH_SIZE
        plan = self._prepare(
            query, force=force, force_join=force_join, limit=limit, projection=projection
        )
        fresh = plan.produces_fresh_rows
        context = ExecutionContext(
            snapshot=self._effective_snapshot(snapshot, transaction, query)
        )

        def batches() -> Iterator[RowBatch]:
            for batch in plan.iter_batches(context, size):
                yield batch if fresh else RowBatch(map(dict, batch))

        return batches()

    def _plan(
        self,
        query: Query,
        *,
        force: str | None,
        force_join: str | None = None,
        limit: int | None = None,
        projection: Sequence[str] | None = None,
    ) -> PlanNode:
        """Plan selection for one execution: a costed physical operator tree."""
        if query.joins:
            joined = self._join_tables(query)
            if any(
                isinstance(joined[name], PartitionedTable)
                for name in query.tables
            ):
                return self.planner.choose_partitioned_join(
                    joined,
                    query,
                    force=force,
                    force_join=force_join,
                    limit=limit,
                    projection=projection,
                    enable_repartition=self.enable_repartition,
                )
            return self.planner.choose_join(
                joined,
                query,
                force=force,
                force_join=force_join,
                limit=limit,
                projection=projection,
            )
        if force_join is not None:
            raise ValueError("force_join only applies to queries with joins")
        target = self.table(query.table)
        if isinstance(target, PartitionedTable):
            return self.planner.choose_partitioned(
                target,
                query,
                force=force,
                limit=limit,
                projection=projection,
            )
        return self.planner.choose(
            target,
            query,
            force=force,
            limit=limit,
            projection=projection,
        )

    def _join_tables(self, query: Query) -> dict[str, Table | PartitionedTable]:
        """The catalog view join planning resolves table names against.

        Partitioned tables participate: when any joined table is
        partitioned, :meth:`_plan` routes to the planner's partition-wise
        join selection (co-partitioned, broadcast or repartition exchange
        shapes); genuinely unsupported layouts are rejected there with an
        actionable error.
        """
        for name in query.tables:
            self.table(name)  # raise the canonical unknown-table error
        return dict(self.tables)

    def _validate_query(self, query: Query, projection: Sequence[str] | None) -> None:
        """Check table names, column collisions and the projection.

        Merged join rows are ``{**outer, **inner}``, so a column name shared
        by two tables in the chain would silently resolve to the inner
        table's value unless it is a same-named join key (where both sides
        agree by construction).  Rather than corrupt results quietly, any
        other collision is rejected here with the ambiguous columns named;
        engine-internal columns (the clustered bucket id) are exempt.
        """
        chain = [self.table(name) for name in query.tables]
        seen_columns = set(chain[0].schema.columns)
        for table, spec in zip(chain[1:], query.joins):
            if any(
                left not in seen_columns or not table.schema.has_column(right)
                for left, right in spec.on
            ):
                # An unresolvable join column: skip collision detection for
                # this step and let the planner's _join_edges raise its
                # canonical unknown-column error during planning.
                seen_columns.update(table.schema.columns)
                continue
            shared_keys = {right for left, right in spec.on if left == right}
            ambiguous = sorted(
                column
                for column in table.schema.columns
                if column in seen_columns
                and column not in shared_keys
                and column != BUCKET_COLUMN
            )
            if ambiguous:
                raise ValueError(
                    f"ambiguous columns {ambiguous} joining {spec.table!r}: "
                    "they exist on both sides but are not same-named join "
                    "keys, so merged rows would silently take the inner "
                    "table's value; rename the columns or join on them"
                )
            seen_columns.update(table.schema.columns)
        def known(column: str) -> bool:
            return any(table.schema.has_column(column) for table in chain)

        tables_text = ", ".join(table.name for table in chain)
        for column in query.grouping:
            if not known(column):
                raise ValueError(
                    f"unknown column {column!r} in GROUP BY (tables: {tables_text})"
                )
        # Grouped queries sort/project over the *grouped* rows: the group
        # columns plus the aggregate's output column.
        grouped_output = (
            set(query.grouping) | {query.aggregate.output_name}
            if query.grouping
            else None
        )
        for column, _ascending in query.ordering:
            if grouped_output is not None:
                if column not in grouped_output:
                    raise ValueError(
                        f"unknown column {column!r} in ORDER BY: grouped rows "
                        f"carry only {sorted(grouped_output)}"
                    )
            elif not known(column):
                raise ValueError(
                    f"unknown column {column!r} in ORDER BY (tables: {tables_text})"
                )
        for column in projection or ():
            if grouped_output is not None:
                if column not in grouped_output:
                    raise ValueError(
                        f"unknown column {column!r} in projection: grouped rows "
                        f"carry only {sorted(grouped_output)}"
                    )
            elif not known(column):
                raise ValueError(
                    f"unknown column {column!r} in projection (tables: {tables_text})"
                )

    def explain(self, query: Query) -> list[dict[str, Any]]:
        """The planner's candidate plans and estimated costs (for inspection).

        Join queries list one candidate per (join order, strategy shape);
        ``structure`` spells out the left-deep pipeline, e.g.
        ``lineitem[cm_scan:cm_shipdate] -> index_nested_loop_join[orders
        (orderkey) via clustered(orderkey)]``.  The query's own LIMIT is
        honoured, so the ranking matches what :meth:`run_query` selects --
        including its validation: a query :meth:`run_query` would reject
        (ambiguous columns, unknown projection) fails here the same way.
        """
        self._validate_query(query, query.projection)
        if query.joins:
            joined = self._join_tables(query)
            if any(
                isinstance(joined[name], PartitionedTable)
                for name in query.tables
            ):
                plans = self.planner.candidate_partitioned_join_plans(
                    joined,
                    query,
                    limit=query.limit,
                    enable_repartition=self.enable_repartition,
                )
            else:
                plans = self.planner.candidate_join_plans(
                    joined, query, limit=query.limit
                )
        else:
            target = self.table(query.table)
            if isinstance(target, PartitionedTable):
                plans = self.planner.candidate_partitioned_plans(
                    target, query, limit=query.limit
                )
            else:
                plans = self.planner.candidate_plans(
                    target, query, limit=query.limit
                )
        return [
            {
                "method": plan.method,
                "structure": plan.structure,
                "estimated_cost_ms": plan.estimated_cost_ms,
            }
            # The planner's rank, not raw cost: ties break by structure
            # preference, so the first entry is the plan selection picks.
            for plan in sorted(plans, key=self.planner.plan_rank)
        ]

    def explain_analyze(
        self,
        query: Query,
        *,
        force: str | None = None,
        force_join: str | None = None,
        cold_cache: bool = False,
    ) -> str:
        """Execute ``query`` and render its plan tree with per-node counters.

        One line per :class:`~repro.engine.executor.PlanNode`, showing the
        planner's estimated rows/pages next to the node's actual counters
        (each node reports only its *own* work, so the columns sum to the
        whole-query totals) plus the node's estimated cost split total.  A
        footer line repeats the totals and the simulated elapsed time::

            >>> from repro.engine.database import Database
            >>> from repro.engine.query import Query
            >>> db = Database()
            >>> _ = db.create_table("t", columns=["x"])
            >>> _ = db.load("t", [{"x": i} for i in range(100)])
            >>> print(db.explain_analyze(Query.select("t", limit=3)))  # doctest: +SKIP
            limit[3]  (rows est=3 act=3, ...)
            └─ seq_scan(t: heap)  (rows est=100 act=3, ...)
            totals: 1 pages, 3 rows examined, ... ms simulated (estimated ... ms)
        """
        from repro.engine.plan import render_plan

        result = self.run_query(
            query, force=force, force_join=force_join, cold_cache=cold_cache
        )
        footer = (
            f"totals: {result.pages_visited} pages, "
            f"{result.rows_examined} rows examined, "
            f"{result.elapsed_ms:.1f} ms simulated "
            f"(estimated {result.estimated_cost_ms:.1f} ms)"
        )
        return f"{render_plan(result.plan)}\n{footer}"

    # -- DML with maintenance --------------------------------------------------------------

    def insert(
        self,
        table: str,
        rows: Iterable[Mapping[str, Any]],
        *,
        batch_size: int | None = None,
        two_phase_commit: bool = True,
    ) -> MaintenanceResult:
        """Insert rows, maintaining heap, secondary indexes, CMs and the WAL.

        Rows are committed in batches (``batch_size=None`` commits once at the
        end), which is the data-warehouse loading pattern of Experiment 3.

        On a partitioned table each row routes to its partition's heap (and
        device); WAL maintenance logs the routed partition's CM updates,
        and per-partition device windows fold into the reported statistics.
        """
        target = self.table(table)
        rows = list(rows)
        before = self.disk.snapshot()
        device_snaps = self._device_snapshots(target)
        pool_before = self.buffer_pool.stats.dirty_evictions
        affected = 0
        transaction = self.transactions.begin()
        for row in rows:
            rid = target.insert_row(row)
            transaction.log("insert", {"table": table, "rid": (rid.page_no, rid.slot)})
            for cm in self._maintained_cms(target, row):
                transaction.log("cm_update", {"cm": cm.name}, size_bytes=32)
            affected += 1
            if batch_size and affected % batch_size == 0:
                transaction.commit(two_phase=two_phase_commit)
                transaction = self.transactions.begin()
        if not transaction.closed and transaction.records:
            transaction.commit(two_phase=two_phase_commit)
        io = self._fold_device_windows(self.disk.window_since(before), device_snaps)
        return MaintenanceResult(
            rows_affected=affected,
            elapsed_ms=io.elapsed_ms(self.disk.params),
            pages_written=io.pages_written,
            log_flushes=io.log_flushes,
            dirty_evictions=self.buffer_pool.stats.dirty_evictions - pool_before,
        )

    def _device_snapshots(
        self, target: Table | PartitionedTable
    ) -> list[tuple[DiskModel, IOBreakdown]]:
        """Per-partition device snapshots (empty for a plain table)."""
        if isinstance(target, PartitionedTable):
            return [(device, device.snapshot()) for device in target.devices]
        return []

    @staticmethod
    def _fold_device_windows(
        io: IOBreakdown, device_snaps: Sequence[tuple[DiskModel, IOBreakdown]]
    ) -> IOBreakdown:
        for device, snap in device_snaps:
            io = io.add(device.window_since(snap))
        return io

    @staticmethod
    def _maintained_cms(
        target: Table | PartitionedTable, row: Mapping[str, Any]
    ) -> Sequence[CorrelationMap]:
        """The CMs one inserted/deleted row touches (its partition's only)."""
        if isinstance(target, PartitionedTable):
            partition = target.partitions[
                target.spec.partition_of(row[target.spec.key])
            ]
            return list(partition.correlation_maps.values())
        return list(target.correlation_maps.values())

    def delete(
        self,
        table: str,
        predicates: PredicateSet | Sequence[Predicate],
        *,
        two_phase_commit: bool = True,
    ) -> MaintenanceResult:
        """Delete every row matching ``predicates`` (found with a seq scan).

        On a partitioned table the search runs one partition heap at a time
        (static pruning narrows it to the partitions the partition-key
        predicate allows) and each victim is deleted through its partition.
        """
        target = self.table(table)
        if not isinstance(predicates, PredicateSet):
            predicates = PredicateSet(predicates)
        before = self.disk.snapshot()
        device_snaps = self._device_snapshots(target)
        transaction = self.transactions.begin()
        affected = 0
        if isinstance(target, PartitionedTable):
            for index in target.prune(predicates):
                partition = target.partitions[index]
                victims = [
                    rid
                    for rid, row in partition.heap.scan()
                    if predicates.matches(row)
                ]
                for rid in victims:
                    row = target.delete_in_partition(index, rid)
                    if row is None:
                        continue
                    transaction.log(
                        "delete", {"table": table, "rid": (rid.page_no, rid.slot)}
                    )
                    for cm in partition.correlation_maps.values():
                        transaction.log("cm_update", {"cm": cm.name}, size_bytes=32)
                    affected += 1
        else:
            victims = [
                rid
                for rid, row in target.heap.scan()
                if predicates.matches(row)
            ]
            for rid in victims:
                row = target.delete_row(rid)
                if row is None:
                    continue
                transaction.log(
                    "delete", {"table": table, "rid": (rid.page_no, rid.slot)}
                )
                for cm in target.correlation_maps.values():
                    transaction.log("cm_update", {"cm": cm.name}, size_bytes=32)
                affected += 1
        transaction.commit(two_phase=two_phase_commit)
        io = self._fold_device_windows(self.disk.window_since(before), device_snaps)
        return MaintenanceResult(
            rows_affected=affected,
            elapsed_ms=io.elapsed_ms(self.disk.params),
            pages_written=io.pages_written,
            log_flushes=io.log_flushes,
        )

    # -- snapshot-isolated transactions ------------------------------------------------------

    def begin_transaction(self) -> Transaction:
        """Open a transaction with a pinned snapshot (snapshot isolation).

        All reads through ``run_query(..., transaction=tx)`` see the state
        as of this call plus the transaction's own writes; writes go through
        :meth:`tx_insert` / :meth:`tx_update` / :meth:`tx_delete` and become
        visible to others only after ``tx.commit()`` (2PC through the WAL).
        ``tx.abort()`` discards them without undo: aborted versions simply
        never become visible.
        """
        return self.transactions.begin()

    def _versioned_table(self, name: str) -> Table:
        """The plain table MVCC writes target (partitioned: unsupported)."""
        target = self.table(name)
        if isinstance(target, PartitionedTable):
            raise NotImplementedError(
                f"table {name!r} is partitioned: MVCC writes over partitioned "
                "tables are not supported yet"
            )
        return target

    def tx_insert(
        self, transaction: Transaction, table: str, rows: Iterable[Mapping[str, Any]]
    ) -> list[RID]:
        """Insert row versions stamped with the transaction's xid."""
        target = self._versioned_table(table)
        rids = []
        for row in rows:
            rid = target.insert_version(row, transaction.xid)
            transaction.log(
                "insert_version", {"table": table, "rid": (rid.page_no, rid.slot)}
            )
            for cm in target.correlation_maps.values():
                transaction.log("cm_update", {"cm": cm.name}, size_bytes=32)
            rids.append(rid)
        return rids

    def tx_delete(
        self,
        transaction: Transaction,
        table: str,
        predicates: PredicateSet | Sequence[Predicate],
    ) -> int:
        """MVCC delete: stamp matching visible versions with a deleting xid.

        Targets are found under the transaction's snapshot; a version whose
        current deleter is a live or committed concurrent transaction raises
        :class:`~repro.engine.transactions.SerializationError` before
        anything is stamped (first-updater-wins, so lost updates surface as
        errors instead of silently vanishing).
        """
        target = self._versioned_table(table)
        if not isinstance(predicates, PredicateSet):
            predicates = PredicateSet(predicates)
        snapshot = transaction.snapshot
        victims: list[tuple[RID, dict[str, Any]]] = []
        for rid, row in target.heap.scan():
            if snapshot.visible(row) and predicates.matches(row):
                self._check_write_conflict(row, transaction, table)
                victims.append((rid, row))
        for rid, _row in victims:
            target.mark_deleted(rid, transaction.xid)
            transaction.log(
                "delete_version", {"table": table, "rid": (rid.page_no, rid.slot)}
            )
            for cm in target.correlation_maps.values():
                transaction.log("cm_update", {"cm": cm.name}, size_bytes=32)
        return len(victims)

    def tx_update(
        self,
        transaction: Transaction,
        table: str,
        predicates: PredicateSet | Sequence[Predicate],
        updates: Mapping[str, Any],
    ) -> int:
        """MVCC update: delete-stamp the old version, insert the new one.

        Both versions coexist in the heap; which one a reader sees depends
        entirely on its snapshot.  Conflict detection is the same
        first-updater-wins check as :meth:`tx_delete`, applied to every
        target before any is written, so a conflicting update changes
        nothing.
        """
        target = self._versioned_table(table)
        if not isinstance(predicates, PredicateSet):
            predicates = PredicateSet(predicates)
        snapshot = transaction.snapshot
        victims: list[tuple[RID, dict[str, Any]]] = []
        for rid, row in target.heap.scan():
            if snapshot.visible(row) and predicates.matches(row):
                self._check_write_conflict(row, transaction, table)
                victims.append((rid, row))
        hidden = (XMIN_COLUMN, XMAX_COLUMN, BUCKET_COLUMN)
        for rid, row in victims:
            fresh = {
                column: value for column, value in row.items() if column not in hidden
            }
            fresh.update(updates)
            target.mark_deleted(rid, transaction.xid)
            new_rid = target.insert_version(fresh, transaction.xid)
            transaction.log(
                "update_version",
                {
                    "table": table,
                    "old": (rid.page_no, rid.slot),
                    "new": (new_rid.page_no, new_rid.slot),
                },
            )
            for cm in target.correlation_maps.values():
                transaction.log("cm_update", {"cm": cm.name}, size_bytes=32)
        return len(victims)

    def _check_write_conflict(
        self, row: Mapping[str, Any], transaction: Transaction, table: str
    ) -> None:
        xmax = row.get(XMAX_COLUMN)
        if xmax is not None and self.transactions.is_conflicting(
            xmax, against=transaction.xid
        ):
            raise SerializationError(
                f"write-write conflict on {table!r}: the version is already "
                f"deleted by concurrent transaction {xmax}"
            )

    # -- concurrent serving ------------------------------------------------------------------

    def run_concurrent(
        self,
        queries: Sequence[Query],
        *,
        max_concurrent: int = 8,
        policy: str = "fair",
        batch_size: int | None = None,
        page_budget: int | None = None,
        cpu_ms_budget: float | None = None,
    ) -> list[QueryResult]:
        """Serve ``queries`` concurrently through one cooperative scheduler.

        Every query is admitted (up to ``max_concurrent`` at once), pins its
        snapshot at admission and advances one scheduling quantum at a time
        over the shared buffer pool; see
        :class:`repro.engine.scheduler.QueryScheduler` for the scheduling
        surface (budgets, priorities, per-query latencies).  Results come
        back in submission order.  The first failed query's error is
        re-raised.
        """
        from repro.engine.scheduler import QueryScheduler

        scheduler = QueryScheduler(
            self,
            max_concurrent=max_concurrent,
            policy=policy,
            batch_size=batch_size,
        )
        for query in queries:
            scheduler.submit(
                query, page_budget=page_budget, cpu_ms_budget=cpu_ms_budget
            )
        scheduled = scheduler.run()
        for entry in scheduled:
            if entry.error is not None:
                raise entry.error
        return [entry.result for entry in scheduled]

    # -- cache and measurement control -------------------------------------------------------

    def drop_caches(self) -> None:
        """Cold-cache every buffer pool (the paper's drop_caches between runs).

        Covers the shared pool and every partition's private pool, so a
        cold run over a partitioned table starts every device cold.
        """
        self.buffer_pool.clear()
        for table in self.tables.values():
            if isinstance(table, PartitionedTable):
                table.drop_caches()

    def checkpoint(self) -> int:
        """Flush all dirty pages and truncate the log; returns pages written."""
        written = self.buffer_pool.flush_all()
        self.wal.flush()
        self.wal.truncate()
        return written

    def elapsed_ms(self) -> float:
        """Total simulated time since the last reset, across every device."""
        total = self.disk.elapsed_ms()
        for table in self.tables.values():
            if isinstance(table, PartitionedTable):
                total += sum(device.elapsed_ms() for device in table.devices)
        return total

    def reset_measurements(self) -> None:
        self.disk.reset()
        for table in self.tables.values():
            if isinstance(table, PartitionedTable):
                table.reset_devices()
