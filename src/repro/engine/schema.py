"""Table schemas.

Schemas are intentionally light-weight: a named list of columns with
per-column byte widths, used to derive ``tups_per_page`` (how many tuples fit
on an 8 KB page), which in turn drives every cost formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

#: Default width assumed for columns without an explicit byte width.
DEFAULT_COLUMN_BYTES = 8
#: Per-tuple header overhead (PostgreSQL's ~24 byte tuple header + item id).
TUPLE_OVERHEAD_BYTES = 28


@dataclass(frozen=True)
class TableSchema:
    """Column layout of one table."""

    name: str
    columns: tuple[str, ...]
    column_bytes: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("a table needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise ValueError("duplicate column names")
        unknown = set(self.column_bytes) - set(self.columns)
        if unknown:
            raise ValueError(f"column_bytes refers to unknown columns: {sorted(unknown)}")

    @classmethod
    def from_columns(
        cls,
        name: str,
        columns: Sequence[str],
        column_bytes: Mapping[str, int] | None = None,
    ) -> "TableSchema":
        return cls(name=name, columns=tuple(columns), column_bytes=dict(column_bytes or {}))

    @classmethod
    def infer(cls, name: str, sample_row: Mapping[str, Any]) -> "TableSchema":
        """Infer a schema (and column widths) from one example row."""
        widths = {}
        for column, value in sample_row.items():
            if isinstance(value, str):
                widths[column] = max(4, len(value) + 1)
            elif isinstance(value, float):
                widths[column] = 8
            elif isinstance(value, bool):
                widths[column] = 1
            else:
                widths[column] = 8
        return cls(name=name, columns=tuple(sample_row), column_bytes=widths)

    def has_column(self, column: str) -> bool:
        return column in self.columns

    def row_bytes(self) -> int:
        """Estimated bytes per tuple including header overhead."""
        payload = sum(
            self.column_bytes.get(column, DEFAULT_COLUMN_BYTES) for column in self.columns
        )
        return payload + TUPLE_OVERHEAD_BYTES

    def tups_per_page(self, page_size_bytes: int = 8192) -> int:
        """How many tuples fit on one page (at least 1)."""
        return max(1, page_size_bytes // self.row_bytes())

    def with_column(self, column: str, width: int = DEFAULT_COLUMN_BYTES) -> "TableSchema":
        """A copy of the schema with one extra column (e.g. the bucket id)."""
        if column in self.columns:
            return self
        return TableSchema(
            name=self.name,
            columns=self.columns + (column,),
            column_bytes={**dict(self.column_bytes), column: width},
        )
