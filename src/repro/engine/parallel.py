"""Process-parallel execution of partitioned exchange plans.

:func:`maybe_run_parallel` executes the per-partition subtrees of an
:class:`~repro.engine.plan.ExchangeNode` on a ``multiprocessing`` pool of
forked workers, then reassembles the plan's state in the parent so the
result -- rows, value, per-node counters, per-device I/O breakdowns, head
positions and simulated elapsed time -- is **bit-identical** to the serial
drain of the same plan.  The differential fuzzer asserts exactly that.

Why the parity holds:

* every partition subtree reads only through its partition's private
  :class:`~repro.storage.disk.DiskModel`, so its I/O classification is
  independent of what the other partitions (or the parent) do concurrently;
  the worker ships back the device's counter window and final head position
  and the parent replays both via :meth:`DiskModel.absorb`;
* per-node actual counters are shipped as plain tuples over the subtree's
  deterministic pre-order ``walk()`` and assigned onto the parent's nodes;
* aggregation merges *partial* per-partition accumulator states in
  ascending partition order.  Counts, distinct sets and integer sums merge
  exactly; a **float** sum/avg may differ from the serial fold in its last
  ulps, because ``(a+b)+c != a+(b+c)`` for floats -- the standard caveat
  of parallel aggregation in every real engine, and the one deliberate
  exception to bit-identity (every *counter* and I/O statistic still
  matches bit for bit; the fuzzer asserts exact values for integer
  aggregates and ulp-tolerance for float ones).

Plans are not picklable (compiled predicate kernels), so nothing is ever
pickled *into* a worker: the pool uses the ``fork`` start method and workers
find the plan in :data:`_WORKER_STATE`, a module global set just before the
fork.  Only the per-worker result payloads cross process boundaries.

Three fan-out shapes are recognised:

* plan root is an ``AggregateNode`` directly over the exchange -- workers
  ship per-partition partial accumulator state (count, running sum or
  distinct set), the parent merges them and synthesises the single
  aggregate row;
* plan root is a ``GroupByNode`` directly over the exchange -- workers ship
  per-group partials in first-seen group order, the parent merges them
  partition by partition (reproducing the serial first-seen order);
* anything else -- workers ship their partition's matching rows, the parent
  hands them to the exchange as a replay (per-partition row lists for a
  :class:`~repro.engine.exchange.MergeExchangeNode`, which re-merges them
  exactly as it merged the live streams; one concatenation otherwise) and
  the ordinary drain runs the decorators above.

A ``LimitNode`` disables the parallel path -- early termination stops the
serial scan mid-partition, which full per-partition drains cannot reproduce
-- **except** above a merge exchange whose children are all blocking
Sort/TopK subtrees: the serial merge drains every child completely before
emitting its first row anyway, so full per-partition drains are exactly the
serial behaviour and the LIMIT only trims the parent-side re-merge.

Partition-wise join subtrees fan out the same way: each surviving partition's
join (scan + hash/probe/merge operator) runs in one worker, with per-group
device windows shipped back (a co-partitioned join touches *two* private
devices per subtree).  Broadcast and repartition caches are filled in the
parent **before** the fork (:func:`repro.engine.exchange.prepare_plan`), so
every worker inherits the filled cache and the shared-device fill charges
happen exactly once, at the same point of the access sequence as the serial
first-pull fill.

One known divergence remains: workers warm their *forked* buffer pools, so
after a parallel run the parent's partition pools are colder than a serial
run would have left them.  Cold-cache methodology (the benchmarks and the
fuzzer) is unaffected.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from operator import itemgetter
from typing import TYPE_CHECKING, Any, Iterator

from repro.engine.exchange import MergeExchangeNode, prepare_plan
from repro.engine.executor import ExecutionContext, PlanNode
from repro.engine.plan import (
    AggregateNode,
    ExchangeNode,
    GroupByNode,
    LimitNode,
    SortNode,
    TopKNode,
    find_node,
)
from repro.storage.disk import IOBreakdown

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.database import Database
    from repro.engine.transactions import Snapshot

#: Whether this platform can fork workers that inherit the (unpicklable)
#: plan tree.  Without fork, execution silently stays serial.
FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

#: State a forked worker inherits: the exchange node, the execution
#: snapshot, the batch size and the fan-out mode.  Set immediately before
#: the pool forks, cleared right after the fan-out completes.
_WORKER_STATE: dict[str, Any] = {}

#: Rows buffered per ``GroupedAccumulators.add_batch`` call in group-mode
#: workers (the same batched kernels the serial executor folds through).
_GROUP_CHUNK = 1024


@dataclass
class _ChildPayload:
    """Everything one worker ships back about its partition subtree."""

    #: Per-node counter tuples over the subtree's pre-order ``walk()``.
    counters: list[tuple[int, int, int, int, int, int]]
    #: The subtree's device group's I/O counter windows, as plain tuples in
    #: the order of ``exchange.device_groups[index]``.
    io: list[tuple[int, int, int, int, int, int, int]]
    #: The device group's final head positions, in the same order.
    head: list[tuple[str | None, int | None]]
    #: Mode-dependent result data (rows, value lists, or group partials).
    data: Any
    #: The CM scan's rewritten SQL, when the subtree produced one.
    rewritten_sql: str | None


def parallel_supported(plan: PlanNode) -> bool:
    """Whether :func:`maybe_run_parallel` would fan this plan out."""
    if not FORK_AVAILABLE:
        return False
    exchange = find_node(plan, ExchangeNode)
    if exchange is None or len(exchange.sources) < 2:
        return False
    limit = find_node(plan, LimitNode)
    if limit is not None:
        # Early termination is only reproducible when every child blocks:
        # the serial merge then drains each partition fully regardless of
        # the LIMIT, exactly what the workers do.  A LIMIT of zero never
        # pulls the exchange at all, so the children must stay undrained.
        if not isinstance(exchange, MergeExchangeNode) or limit.k < 1:
            return False
        if not all(
            isinstance(source, (SortNode, TopKNode))
            for source in exchange.sources
        ):
            return False
    return True


def _fanout_mode(plan: PlanNode, exchange: ExchangeNode) -> str:
    """Which reassembly shape applies: ``aggregate``, ``group`` or ``rows``."""
    if isinstance(plan, AggregateNode) and plan.source is exchange:
        return "aggregate"
    if isinstance(plan, GroupByNode) and plan.source is exchange:
        return "group"
    return "rows"


def _child_rows(
    child: PlanNode, context: ExecutionContext, batch_size: int | None
) -> Iterator[dict[str, Any]]:
    """One partition subtree's output rows, pulled as the serial drain would.

    Live heap-page dicts flow out unchanged; callers that keep rows must
    copy them (exactly the contract of the serial pipelines).
    """
    if batch_size is None:
        yield from child.iter_rows(context)
    else:
        for batch in child.iter_batches(context, batch_size):
            yield from batch


def _extract_values(rows: Iterator[dict[str, Any]], expression: Any) -> list[Any]:
    if callable(expression):
        return [expression(row) for row in rows]
    return [row[expression] for row in rows]


def _run_child(index: int) -> _ChildPayload:
    """Worker entry point: drain one partition subtree in the forked copy."""
    state = _WORKER_STATE
    exchange: ExchangeNode = state["exchange"]
    child = exchange.sources[index]
    devices = exchange.device_groups[index]
    snapshot: "Snapshot | None" = state["snapshot"]
    mode: str = state["mode"]
    # count_output=False mirrors the child context the exchange node pulls
    # under serially, so per-node rows_emitted matches the serial run.
    context = ExecutionContext(snapshot=snapshot, count_output=False)
    befores = [device.snapshot() for device in devices]
    rows = _child_rows(child, context, state["batch_size"])

    data: Any
    if mode == "aggregate":
        aggregate = state["aggregate"]
        if aggregate.kind == "count":
            data = (sum(1 for _row in rows), None)
        else:
            values = _extract_values(rows, aggregate.expression)
            if aggregate.kind == "count_distinct":
                data = (len(values), set(values))
            else:
                partial: Any = 0
                for item in values:
                    partial = partial + item
                data = (len(values), partial)
    elif mode == "group":
        aggregate = state["aggregate"]
        columns = state["group_columns"]
        key_of = itemgetter(*columns)
        grouped = aggregate.make_grouped()
        rows_in = 0
        chunk: list[dict[str, Any]] = []
        for row in rows:
            chunk.append(row)
            if len(chunk) >= _GROUP_CHUNK:
                grouped.add_batch(list(map(key_of, chunk)), chunk)
                rows_in += len(chunk)
                chunk = []
        if chunk:
            grouped.add_batch(list(map(key_of, chunk)), chunk)
            rows_in += len(chunk)
        data = (rows_in, grouped.partial_state())
    else:
        data = [dict(row) for row in rows]

    windows = [
        device.window_since(before)
        for device, before in zip(devices, befores)
    ]
    return _ChildPayload(
        counters=[
            (
                node.actual.rows_examined,
                node.actual.pages_visited,
                node.actual.lookups,
                node.actual.rows_emitted,
                node.actual.join_probes,
                node.actual.rows_out,
            )
            for node in child.walk()
        ],
        io=[
            (
                window.sequential_reads,
                window.random_reads,
                window.sequential_writes,
                window.random_writes,
                window.log_flushes,
                window.log_pages_written,
                window.cpu_tuples,
            )
            for window in windows
        ],
        head=[device.tracker.head_position() for device in devices],
        data=data,
        rewritten_sql=context.rewritten_sql,
    )


def _apply_payloads(
    exchange: ExchangeNode,
    payloads: list[_ChildPayload],
    context: ExecutionContext,
) -> None:
    """Replay the workers' counters, I/O windows and head positions."""
    for child, payload in zip(exchange.sources, payloads):
        for node, counters in zip(child.walk(), payload.counters):
            (
                node.actual.rows_examined,
                node.actual.pages_visited,
                node.actual.lookups,
                node.actual.rows_emitted,
                node.actual.join_probes,
                node.actual.rows_out,
            ) = counters
    for group, payload in zip(exchange.device_groups, payloads):
        for device, io, head in zip(group, payload.io, payload.head):
            device.absorb(IOBreakdown(*io), head)
    for payload in payloads:
        if payload.rewritten_sql is not None:
            context.shared.rewritten_sql = payload.rewritten_sql
            break


def _merge_aggregate(
    plan: AggregateNode, exchange: ExchangeNode, payloads: list[_ChildPayload]
) -> list[dict[str, Any]]:
    """Merge per-partition partials in partition order; one output row."""
    aggregate = plan.aggregate
    kind = aggregate.kind
    rows_in = sum(payload.data[0] for payload in payloads)
    value: Any
    if kind == "count":
        value = rows_in
    elif kind == "count_distinct":
        distinct: set[Any] = set()
        for payload in payloads:
            distinct |= payload.data[1]
        value = len(distinct)
    else:
        # Partial sums added in ascending partition order: exact for ints,
        # last-ulp drift from the serial fold possible for floats (the
        # module docstring's one documented exception to bit-identity).
        total: Any = 0
        for payload in payloads:
            total = total + payload.data[1]
        value = (total / rows_in if rows_in else None) if kind == "avg" else total
    plan.rows_in = rows_in
    plan.value = value
    plan._charge_cpu(rows_in)
    plan.actual.rows_out = 1
    plan.actual.rows_emitted = 1
    exchange.actual.rows_out = rows_in
    exchange.partitions_scanned = len(exchange.sources)
    return [{aggregate.output_name: value}]


def _merge_groups(
    plan: GroupByNode, exchange: ExchangeNode, payloads: list[_ChildPayload]
) -> list[dict[str, Any]]:
    """Merge per-partition group partials in first-seen group order."""
    aggregate = plan.aggregate
    grouped = aggregate.make_grouped()
    rows_in = 0
    for payload in payloads:
        partition_rows, (counts, partials) = payload.data
        rows_in += partition_rows
        grouped.absorb_partial(counts, partials)
    columns = plan.group_columns
    single = columns[0] if len(columns) == 1 else None
    output_name = aggregate.output_name
    rows: list[dict[str, Any]] = []
    for key, value in grouped.results():
        merged = {single: key} if single is not None else dict(zip(columns, key))
        merged[output_name] = value
        rows.append(merged)
    plan.rows_in = rows_in
    plan.groups_out = len(rows)
    plan._charge_cpu(rows_in)
    plan.actual.rows_out = len(rows)
    plan.actual.rows_emitted = len(rows)
    exchange.actual.rows_out = rows_in
    exchange.partitions_scanned = len(exchange.sources)
    return rows


def maybe_run_parallel(
    database: "Database",
    plan: PlanNode,
    context: ExecutionContext,
    *,
    workers: int,
) -> list[dict[str, Any]] | None:
    """Fan a partitioned plan out over forked workers, or decline.

    Returns the plan's final output rows (what ``Database._drain`` would
    have produced) with all plan/device state reassembled as-if serial, or
    ``None`` when the plan does not qualify -- the caller then drains
    serially.
    """
    if workers < 2 or not parallel_supported(plan):
        return None
    exchange = find_node(plan, ExchangeNode)
    mode = _fanout_mode(plan, exchange)
    # Broadcast/repartition caches fill in the parent before the fork, so
    # every worker inherits them and the shared-device fill charges happen
    # exactly once -- at the same point of the access sequence as the serial
    # first-pull fill.  report_rewritten_sql=False mirrors the hash build
    # context the fill runs under serially.
    prepare_plan(
        plan,
        ExecutionContext(
            snapshot=context.snapshot,
            count_output=False,
            report_rewritten_sql=False,
        ),
    )
    # Under a LIMIT the serial batched drain degrades the exchange's
    # children to row-at-a-time pulls (the chunked-row fallback); the
    # workers mirror that so per-node accounting matches bit for bit.
    batch_size = database.batch_size
    if find_node(plan, LimitNode) is not None:
        batch_size = None
    _WORKER_STATE.update(
        exchange=exchange,
        snapshot=context.snapshot,
        batch_size=batch_size,
        mode=mode,
        aggregate=getattr(plan, "aggregate", None),
        group_columns=getattr(plan, "group_columns", ()),
    )
    try:
        pool_context = multiprocessing.get_context("fork")
        with pool_context.Pool(min(workers, len(exchange.sources))) as pool:
            payloads = pool.map(_run_child, range(len(exchange.sources)))
    finally:
        _WORKER_STATE.clear()
    _apply_payloads(exchange, payloads, context)
    if mode == "aggregate":
        assert isinstance(plan, AggregateNode)
        return _merge_aggregate(plan, exchange, payloads)
    if mode == "group":
        assert isinstance(plan, GroupByNode)
        return _merge_groups(plan, exchange, payloads)
    if isinstance(exchange, MergeExchangeNode):
        # Per-partition ordered lists re-merge exactly as the live streams
        # would have; a LIMIT above then trims the re-merge identically.
        exchange.set_replay_parts([payload.data for payload in payloads])
    else:
        replay: list[dict[str, Any]] = []
        for payload in payloads:
            replay.extend(payload.data)
        exchange.set_replay(replay)
    return database._drain(plan, context)
