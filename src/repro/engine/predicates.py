"""Selection predicates.

The paper's workloads only need conjunctions of equality, ``IN`` and range
predicates over single attributes (plus one computed-expression predicate in
the SDSS Q2 variant, handled as a residual filter), so that is what the
engine supports.  Predicates convert to the value-level constraints consumed
by correlation maps and the query rewriter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.composite import ValueConstraint


class Predicate:
    """Base class: a condition over one attribute (or a computed expression)."""

    attribute: str

    def matches(self, row: Mapping[str, Any]) -> bool:
        raise NotImplementedError

    def selector(self) -> Callable[[Mapping[str, Any]], bool]:
        """A specialised row filter equivalent to :meth:`matches`.

        Built once per batch pipeline and applied row by row from a C-driven
        comprehension, so the per-row cost is a closure call on captured
        constants instead of a method dispatch plus attribute reads.  The
        default falls back to the bound :meth:`matches`.
        """
        return self.matches

    def condition_source(self, index: int) -> tuple[str, dict[str, Any]]:
        """A Python expression testing this predicate on ``row``, plus its
        environment.

        The fragments of every predicate in a :class:`PredicateSet` are
        ``and``-joined into one compiled batch comprehension (see
        :meth:`PredicateSet.batch_kernel`), so the per-row cost drops from
        one closure call per predicate to inline comparisons.  ``index``
        uniquifies the environment names of this predicate's constants.  The
        default falls back to calling the :meth:`selector` closure.
        """
        name = f"_predicate{index}"
        return f"{name}(row)", {name: self.selector()}

    def constraint(self) -> ValueConstraint:
        raise NotImplementedError

    @property
    def lookup_values(self) -> tuple[Any, ...] | None:
        """The explicit values an index would probe, if enumerable."""
        return None


@dataclass(frozen=True)
class Equals(Predicate):
    """``attribute = value``"""

    attribute: str
    value: Any

    def matches(self, row: Mapping[str, Any]) -> bool:
        return row[self.attribute] == self.value

    def selector(self) -> Callable[[Mapping[str, Any]], bool]:
        attribute, value = self.attribute, self.value
        return lambda row: row[attribute] == value

    def condition_source(self, index: int) -> tuple[str, dict[str, Any]]:
        return (
            f"row[_attr{index}] == _value{index}",
            {f"_attr{index}": self.attribute, f"_value{index}": self.value},
        )

    def constraint(self) -> ValueConstraint:
        return ValueConstraint.equals(self.value)

    @property
    def lookup_values(self) -> tuple[Any, ...]:
        return (self.value,)

    def describe(self) -> str:
        return f"{self.attribute} = {self.value!r}"


@dataclass(frozen=True)
class InSet(Predicate):
    """``attribute IN (v1, ..., vN)``"""

    attribute: str
    values: tuple[Any, ...]

    def __init__(self, attribute: str, values: Iterable[Any]) -> None:
        object.__setattr__(self, "attribute", attribute)
        object.__setattr__(self, "values", tuple(values))

    def matches(self, row: Mapping[str, Any]) -> bool:
        return row[self.attribute] in self.values

    def selector(self) -> Callable[[Mapping[str, Any]], bool]:
        # Tuple containment, like matches: equality-based even for values a
        # set could not hash.
        attribute, values = self.attribute, self.values
        return lambda row: row[attribute] in values

    def condition_source(self, index: int) -> tuple[str, dict[str, Any]]:
        # Tuple containment, matching selector()/matches().
        return (
            f"row[_attr{index}] in _values{index}",
            {f"_attr{index}": self.attribute, f"_values{index}": self.values},
        )

    def constraint(self) -> ValueConstraint:
        return ValueConstraint.in_set(self.values)

    @property
    def lookup_values(self) -> tuple[Any, ...]:
        return self.values

    def describe(self) -> str:
        return f"{self.attribute} IN ({', '.join(map(repr, self.values))})"


@dataclass(frozen=True)
class Between(Predicate):
    """``attribute BETWEEN low AND high`` (inclusive; either bound optional)."""

    attribute: str
    low: Any = None
    high: Any = None

    def __post_init__(self) -> None:
        if self.low is None and self.high is None:
            raise ValueError("a range predicate needs at least one bound")

    def matches(self, row: Mapping[str, Any]) -> bool:
        value = row[self.attribute]
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    def selector(self) -> Callable[[Mapping[str, Any]], bool]:
        # The bound checks mirror matches() exactly (including its treatment
        # of unordered values like NaN: a failed comparison keeps the row).
        attribute, low, high = self.attribute, self.low, self.high
        if low is None:
            return lambda row: not row[attribute] > high
        if high is None:
            return lambda row: not row[attribute] < low
        return lambda row: not (row[attribute] < low or row[attribute] > high)

    def condition_source(self, index: int) -> tuple[str, dict[str, Any]]:
        # Negated-exclusion form, like selector(): a failed comparison
        # (e.g. NaN) keeps the row, exactly as matches() does.
        attr = f"_attr{index}"
        env: dict[str, Any] = {attr: self.attribute}
        if self.low is None:
            env[f"_high{index}"] = self.high
            return f"not row[{attr}] > _high{index}", env
        if self.high is None:
            env[f"_low{index}"] = self.low
            return f"not row[{attr}] < _low{index}", env
        env[f"_low{index}"] = self.low
        env[f"_high{index}"] = self.high
        return (
            f"not (row[{attr}] < _low{index} or row[{attr}] > _high{index})",
            env,
        )

    def constraint(self) -> ValueConstraint:
        return ValueConstraint.between(self.low, self.high)

    def describe(self) -> str:
        return f"{self.attribute} BETWEEN {self.low!r} AND {self.high!r}"


@dataclass(frozen=True)
class ExpressionPredicate(Predicate):
    """A computed-expression filter, e.g. ``g + rho BETWEEN 23 AND 25``.

    Expression predicates cannot be used for index or CM lookups; they are
    applied as residual filters only.  ``attribute`` names the expression for
    reporting purposes.
    """

    attribute: str
    function: Callable[[Mapping[str, Any]], bool]

    def matches(self, row: Mapping[str, Any]) -> bool:
        return bool(self.function(row))

    def selector(self) -> Callable[[Mapping[str, Any]], bool]:
        return self.function

    def constraint(self) -> ValueConstraint:
        return ValueConstraint()

    def describe(self) -> str:
        return f"expr({self.attribute})"


class PredicateSet:
    """A conjunction (AND) of predicates."""

    def __init__(self, predicates: Iterable[Predicate] = ()) -> None:
        self.predicates: tuple[Predicate, ...] = tuple(predicates)
        #: Compiled batch kernels keyed by projection tuple (None = no
        #: projection), built lazily by :meth:`batch_kernel`.
        self._kernels: dict[tuple[str, ...] | None, Callable[[list], list]] = {}

    def __iter__(self) -> Iterator["Predicate"]:
        return iter(self.predicates)

    def __len__(self) -> int:
        return len(self.predicates)

    def __bool__(self) -> bool:
        return bool(self.predicates)

    def matches(self, row: Mapping[str, Any]) -> bool:
        return all(predicate.matches(row) for predicate in self.predicates)

    def batch_filter(self, rows: list) -> list:
        """The rows surviving every predicate (batch twin of :meth:`matches`).

        One compiled comprehension over the batch (see :meth:`batch_kernel`):
        the same conjunction as :meth:`matches`, short-circuited row-major
        left to right, with the comparisons inlined rather than dispatched
        through per-predicate closures.  An empty set returns ``rows``
        unchanged.
        """
        if not self.predicates:
            return rows
        return self.batch_kernel()(rows)

    def batch_kernel(
        self, project: Sequence[str] | None = None
    ) -> Callable[[list], list]:
        """A compiled single-pass batch kernel: filter, optionally project.

        The kernel is one ``eval``-built list comprehension whose condition
        ``and``-joins every predicate's :meth:`Predicate.condition_source`
        fragment and whose element is either the row itself or, with
        ``project``, a fresh dict of just those columns — so a fused
        scan→filter→project pipeline runs as one C-driven pass per page with
        no intermediate batch materialisation.  Constants are bound through
        the compilation namespace; only generated identifiers appear in the
        source text.  Kernels are cached per projection tuple for the
        lifetime of this set.
        """
        key = tuple(project) if project is not None else None
        kernel = self._kernels.get(key)
        if kernel is None:
            env: dict[str, Any] = {}
            conditions: list[str] = []
            for index, predicate in enumerate(self.predicates):
                fragment, bindings = predicate.condition_source(index)
                conditions.append(f"({fragment})")
                env.update(bindings)
            if key is None:
                element = "row"
            else:
                env["_columns"] = key
                element = "{column: row[column] for column in _columns}"
            condition = " and ".join(conditions)
            suffix = f" if {condition}" if condition else ""
            source = f"lambda rows: [{element} for row in rows{suffix}]"
            kernel = eval(compile(source, "<batch-kernel>", "eval"), env)
            self._kernels[key] = kernel
        return kernel

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(predicate.attribute for predicate in self.predicates)

    def indexable_predicates(self) -> list[Predicate]:
        """Predicates usable for index/CM lookups (not expression filters)."""
        return [p for p in self.predicates if not isinstance(p, ExpressionPredicate)]

    def best_by_attribute(self) -> dict[str, Predicate]:
        """The most selective indexable predicate per attribute.

        When several predicates constrain the same attribute (e.g. a local
        range filter plus a join-key equality bound by an inner probe), the
        lookup-driving one is the tightest: ``Equals`` beats ``InSet`` beats
        ``Between``.  All of them still apply as residual filters.  This is
        the single precedence rule shared by index probing, CM constraint
        derivation and :meth:`on_attribute`.
        """
        best: dict[str, Predicate] = {}
        for predicate in self.indexable_predicates():
            current = best.get(predicate.attribute)
            if current is None or self._selectivity_rank(predicate) < self._selectivity_rank(
                current
            ):
                best[predicate.attribute] = predicate
        return best

    def on_attribute(self, attribute: str) -> Predicate | None:
        """The most selective indexable predicate on ``attribute`` (or None)."""
        return self.best_by_attribute().get(attribute)

    @staticmethod
    def _selectivity_rank(predicate: Predicate) -> int:
        if isinstance(predicate, Equals):
            return 0
        if isinstance(predicate, InSet):
            return 1
        if isinstance(predicate, Between):
            return 2
        return 3

    def constraints(self) -> dict[str, ValueConstraint]:
        """Per-attribute value constraints (for CMs and the rewriter).

        One constraint per attribute, from its most selective predicate
        (:meth:`best_by_attribute`); the weaker predicates on the attribute
        remain residual filters.
        """
        return {
            attribute: predicate.constraint()
            for attribute, predicate in self.best_by_attribute().items()
        }

    def describe(self) -> str:
        if not self.predicates:
            return "TRUE"
        return " AND ".join(
            getattr(p, "describe", lambda: repr(p))() for p in self.predicates
        )

    @classmethod
    def of(cls, *predicates: Predicate) -> "PredicateSet":
        return cls(predicates)
