"""Tables: heap file + clustered index + secondary indexes + correlation maps.

A :class:`Table` owns all physical structures for one relation and keeps them
consistent under loads, re-clustering, inserts and deletes.  Clustering a
table on an attribute (PostgreSQL's ``CLUSTER``) physically sorts the heap,
rebuilds the clustered index, optionally assigns clustered *bucket ids*
(Section 6.1.1 -- "the CM Advisor buckets the clustered attribute by adding a
new column to the table that represents the bucket ID"), and rebuilds every
secondary index and CM against the new layout.

Rows inserted after clustering are appended to the unclustered tail of the
heap, exactly as PostgreSQL would, and are tagged with a special tail bucket
id so that correlation-map scans still find them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

if TYPE_CHECKING:
    from repro.engine.predicates import PredicateSet

from repro.core.bucketing import Bucketer, assign_clustered_buckets
from repro.core.composite import CompositeKeySpec
from repro.core.correlation_map import CorrelationMap
from repro.core.model import CorrelationProfile, TableProfile
from repro.core.statistics import DEFAULT_STATS_SAMPLE_SIZE, IncrementalTableStatistics
from repro.engine.schema import TableSchema
from repro.engine.transactions import XMAX_COLUMN, XMIN_COLUMN
from repro.index.clustered import ClusteredIndex
from repro.index.secondary import SecondaryIndex
from repro.storage.buffer_pool import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.page import RID

#: Name of the derived column holding the clustered bucket id.
BUCKET_COLUMN = "_cm_bucket"
#: Bucket id given to rows appended after the last clustering.
TAIL_BUCKET = -1


class Table:
    """One relation and all of its access structures."""

    def __init__(
        self,
        schema: TableSchema,
        buffer_pool: BufferPool,
        *,
        tups_per_page: int | None = None,
        stats_sample_size: int = DEFAULT_STATS_SAMPLE_SIZE,
        stats_refresh_ops: int | None = None,
    ) -> None:
        self.schema = schema
        self.buffer_pool = buffer_pool
        page_size = buffer_pool.disk.params.page_size_bytes
        self.tups_per_page = tups_per_page or schema.tups_per_page(page_size)
        self.heap = HeapFile(schema.name, self.tups_per_page, buffer_pool)

        self.clustered_attribute: str | None = None
        self.clustered_index: ClusteredIndex | None = None
        self.pages_per_bucket: int | None = None
        self._bucket_key_ranges: list[tuple[Any, Any, int]] = []
        self._clustered_until_page = 0

        self.secondary_indexes: dict[str, SecondaryIndex] = {}
        self.correlation_maps: dict[str, CorrelationMap] = {}
        #: CM name -> True when the CM maps to clustered bucket ids.
        self._cm_uses_buckets: dict[str, bool] = {}

        #: Planner statistics maintained incrementally under inserts/deletes;
        #: planning never scans the heap (see ARCHITECTURE.md).  The optional
        #: periodic re-seed (``stats_refresh_ops``) is the one maintenance
        #: path that scans it, amortised over that many DML operations.
        self.statistics = IncrementalTableStatistics(
            sample_capacity=stats_sample_size, refresh_ops=stats_refresh_ops
        )

        #: True once any row carries MVCC version columns; while False the
        #: scan kernels skip visibility filtering entirely (the pre-MVCC
        #: fast path costs existing workloads nothing).
        self.mvcc_versioned = False

    # -- basic properties --------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def num_rows(self) -> int:
        return self.heap.num_tuples

    @property
    def num_pages(self) -> int:
        return self.heap.num_pages

    @property
    def is_clustered(self) -> bool:
        return self.clustered_index is not None

    @property
    def has_clustered_buckets(self) -> bool:
        return bool(self._bucket_key_ranges)

    def all_rows(self) -> Iterable[dict[str, Any]]:
        """Every live row, without I/O accounting (catalog / statistics use)."""
        return self.heap.all_rows()

    def tail_pages(self) -> list[int]:
        """Heap pages appended after the last clustering (unsorted region)."""
        return list(range(self._clustered_until_page, self.heap.num_pages))

    def stream_ordering(self) -> tuple[tuple[str, bool], ...]:
        """Columns an ascending page sweep of this heap is sorted by.

        A freshly clustered heap *is* sorted by the clustered attribute, so
        until an unsorted tail grows, any sweep that visits pages in
        ascending page order emits rows in clustered-attribute order.  The
        single source of that rule: access paths and the planner's
        free-ORDER-BY analysis both consult it.
        """
        if self.clustered_attribute is not None and not self.tail_pages():
            return ((self.clustered_attribute, True),)
        return ()

    # -- loading and clustering -----------------------------------------------------

    def load(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """Bulk load rows (initial population; no buffer-pool traffic)."""
        count = 0
        for row in rows:
            stored = dict(row)
            self.heap.append(stored, charge_io=False)
            self.statistics.observe_insert(stored)
            count += 1
        return count

    def cluster_on(
        self, attribute: str, *, pages_per_bucket: int | None = None
    ) -> None:
        """Physically sort the heap by ``attribute`` and rebuild structures.

        ``pages_per_bucket`` enables clustered-attribute bucketing: roughly
        that many heap pages map to each bucket id, and every row gains a
        ``_cm_bucket`` column holding its bucket id.
        """
        if not self.schema.has_column(attribute):
            raise KeyError(f"unknown column {attribute!r} in table {self.name!r}")
        placed = self.heap.rebuild_clustered(lambda row: row[attribute])
        self.clustered_attribute = attribute
        self.clustered_index = ClusteredIndex(
            f"{self.name}__clustered", attribute, self.buffer_pool
        )
        page_bounds = []
        for page in self.heap.pages:
            keys = [row[attribute] for _slot, row in page.live_rows()]
            page_bounds.append((min(keys), max(keys)))
        self.clustered_index.build(page_bounds)
        self.heap.seal()
        self._clustered_until_page = self.heap.num_pages

        self.pages_per_bucket = pages_per_bucket
        self._bucket_key_ranges = []
        if pages_per_bucket is not None:
            self._assign_buckets(placed, attribute, pages_per_bucket)

        self._rebuild_secondary_structures()
        # Clustering already rewrites the whole heap (and may add the bucket
        # column), so this is the one place statistics rebuild from a scan.
        self.statistics.rebuild(self.heap.all_rows())

    def _assign_buckets(
        self,
        placed: Sequence[tuple[RID, dict[str, Any]]],
        attribute: str,
        pages_per_bucket: int,
    ) -> None:
        if pages_per_bucket <= 0:
            raise ValueError("pages_per_bucket must be positive")
        tuples_per_bucket = pages_per_bucket * self.tups_per_page
        keys = [row[attribute] for _rid, row in placed]
        ids, buckets = assign_clustered_buckets(keys, tuples_per_bucket)
        for (_rid, row), bucket_id in zip(placed, ids):
            row[BUCKET_COLUMN] = bucket_id
        self.schema = self.schema.with_column(BUCKET_COLUMN)
        assert self.clustered_index is not None
        for bucket in buckets:
            first_page = placed[bucket.first_row][0].page_no
            last_page = placed[bucket.last_row][0].page_no
            self.clustered_index.register_bucket(
                bucket.bucket_id, first_page, last_page, bucket.min_key, bucket.max_key
            )
            self._bucket_key_ranges.append(
                (bucket.min_key, bucket.max_key, bucket.bucket_id)
            )

    def _rebuild_secondary_structures(self) -> None:
        """Rebuild secondary indexes and CMs after a physical reorganisation."""
        rows_with_rids = list(self.heap.scan(charge_io=False))
        for name, index in list(self.secondary_indexes.items()):
            rebuilt = SecondaryIndex(
                name, index.attributes, self.buffer_pool, order=index.tree.order
            )
            rebuilt.build(rows_with_rids)
            self.secondary_indexes[name] = rebuilt
        for name, cm in list(self.correlation_maps.items()):
            self.correlation_maps[name] = self._build_cm(
                name, cm.key_spec, uses_buckets=self._cm_uses_buckets[name]
            )

    # -- bucket helpers -----------------------------------------------------------------

    def bucket_for_value(self, value: Any) -> int:
        """The clustered bucket id whose key range contains ``value``.

        Values outside every bucket (only possible for rows inserted after
        clustering with new clustered-attribute values) map to the tail.
        """
        for min_key, max_key, bucket_id in self._bucket_key_ranges:
            if min_key <= value <= max_key:
                return bucket_id
        return TAIL_BUCKET

    def pages_for_targets(self, targets: Iterable[Any], *, uses_buckets: bool) -> list[int]:
        """Heap pages to visit for a CM lookup result.

        ``targets`` are clustered bucket ids (when the CM maps to buckets) or
        clustered-attribute values.  Rows in the unclustered tail are covered
        either by the explicit :data:`TAIL_BUCKET` target or, for value-mapped
        CMs, by conservatively adding the tail pages.
        """
        if self.clustered_index is None:
            return list(range(self.heap.num_pages))
        pages: set[int] = set()
        include_tail = False
        for target in targets:
            if uses_buckets:
                if target == TAIL_BUCKET:
                    include_tail = True
                else:
                    pages.update(self.clustered_index.pages_for_bucket(target))
            else:
                pages.update(self.clustered_index.pages_for_value(target))
        if not uses_buckets and self.tail_pages():
            include_tail = True
        if include_tail:
            pages.update(self.tail_pages())
        return sorted(pages)

    # -- secondary indexes ------------------------------------------------------------------

    def create_secondary_index(
        self, attributes: Sequence[str] | str, *, name: str | None = None, order: int = 256
    ) -> SecondaryIndex:
        if isinstance(attributes, str):
            attributes = [attributes]
        for attribute in attributes:
            if not self.schema.has_column(attribute):
                raise KeyError(f"unknown column {attribute!r}")
        name = name or f"{self.name}__idx_{'_'.join(attributes)}"
        if name in self.secondary_indexes:
            raise ValueError(f"index {name!r} already exists")
        index = SecondaryIndex(name, attributes, self.buffer_pool, order=order)
        index.build(self.heap.scan(charge_io=False))
        self.secondary_indexes[name] = index
        return index

    def drop_secondary_index(self, name: str) -> None:
        del self.secondary_indexes[name]

    # -- correlation maps -----------------------------------------------------------------------

    def create_correlation_map(
        self,
        attributes: Sequence[str] | str,
        *,
        bucketers: Mapping[str, Bucketer] | None = None,
        name: str | None = None,
        use_clustered_buckets: bool = True,
    ) -> CorrelationMap:
        """Create (and build) a CM over ``attributes``.

        ``use_clustered_buckets`` makes the CM map to clustered bucket ids when
        the table was clustered with ``pages_per_bucket``; otherwise it maps to
        raw clustered-attribute values.
        """
        if self.clustered_attribute is None:
            raise RuntimeError("cluster the table before creating correlation maps")
        if isinstance(attributes, str):
            attributes = [attributes]
        for attribute in attributes:
            if not self.schema.has_column(attribute):
                raise KeyError(f"unknown column {attribute!r}")
        name = name or f"{self.name}__cm_{'_'.join(attributes)}"
        if name in self.correlation_maps:
            raise ValueError(f"correlation map {name!r} already exists")
        key_spec = CompositeKeySpec.build(attributes, bucketers)
        uses_buckets = use_clustered_buckets and self.has_clustered_buckets
        cm = self._build_cm(name, key_spec, uses_buckets=uses_buckets)
        self.correlation_maps[name] = cm
        self._cm_uses_buckets[name] = uses_buckets
        return cm

    def _build_cm(
        self, name: str, key_spec: CompositeKeySpec, *, uses_buckets: bool
    ) -> CorrelationMap:
        assert self.clustered_attribute is not None
        if uses_buckets:
            cm = CorrelationMap(
                name,
                key_spec,
                self.clustered_attribute,
                target_of=lambda row: row.get(BUCKET_COLUMN, TAIL_BUCKET),
            )
        else:
            cm = CorrelationMap(name, key_spec, self.clustered_attribute)
        cm.build(self.heap.all_rows())
        return cm

    def drop_correlation_map(self, name: str) -> None:
        del self.correlation_maps[name]
        del self._cm_uses_buckets[name]

    def cm_uses_buckets(self, name: str) -> bool:
        return self._cm_uses_buckets[name]

    # -- maintenance -----------------------------------------------------------------------------

    def insert_row(self, row: Mapping[str, Any], *, charge_io: bool = True) -> RID:
        """Insert one tuple, maintaining every index and CM."""
        row = dict(row)
        if self.has_clustered_buckets:
            row[BUCKET_COLUMN] = TAIL_BUCKET
        rid = self.heap.append(row, charge_io=charge_io)
        for index in self.secondary_indexes.values():
            index.insert(rid, row, charge_io=charge_io)
        for cm in self.correlation_maps.values():
            cm.insert(row)
        self.statistics.observe_insert(row)
        self._maybe_refresh_statistics()
        return rid

    def delete_row(self, rid: RID, *, charge_io: bool = True) -> dict[str, Any] | None:
        """Delete the tuple at ``rid``, maintaining every index and CM."""
        row = self.heap.fetch(rid, charge_io=False)
        if row is None:
            return None
        self.heap.delete(rid, charge_io=charge_io)
        for index in self.secondary_indexes.values():
            index.delete(rid, row, charge_io=charge_io)
        for cm in self.correlation_maps.values():
            cm.delete(row)
        self.statistics.observe_delete(row)
        self._maybe_refresh_statistics()
        return row

    # -- MVCC version writes ---------------------------------------------------------------------

    def insert_version(self, row: Mapping[str, Any], xid: int, *, charge_io: bool = True) -> RID:
        """Insert a new row *version* stamped with its creating transaction.

        The row gains a hidden ``_xmin`` column and flows through
        :meth:`insert_row`, so secondary indexes, CMs and statistics all see
        it immediately -- index probes may surface versions invisible to a
        given snapshot, and the scan kernels' visibility filter drops them,
        exactly as residual predicates drop CM false positives.
        """
        versioned = dict(row)
        versioned[XMIN_COLUMN] = xid
        self.mvcc_versioned = True
        return self.insert_row(versioned, charge_io=charge_io)

    def mark_deleted(self, rid: RID, xid: int, *, charge_io: bool = True) -> dict[str, Any] | None:
        """MVCC delete: stamp the version at ``rid`` with a deleting xid.

        Nothing is physically removed -- the version stays in the heap (and
        in every index and CM) so concurrent snapshots that predate the
        deleting transaction keep seeing it; readers past it filter it out.
        The page is dirtied like any in-place write.  Statistics are *not*
        adjusted here: the physical row count is unchanged until a future
        vacuum reclaims dead versions.
        """
        row = self.heap.fetch(rid, charge_io=False)
        if row is None:
            return None
        if charge_io:
            self.buffer_pool.access(self.heap.name, rid.page_no, dirty=True)
        row[XMAX_COLUMN] = xid
        self.mvcc_versioned = True
        return row

    def _maybe_refresh_statistics(self) -> None:
        """The periodic re-seeding policy (``stats_refresh_ops``).

        Once enough DML has accumulated, the statistics are rebuilt from one
        accounting-free heap scan: the reservoir is re-seeded (restoring a
        uniform -- or complete -- sample after delete erosion), the min/max
        bounds snap back to the live domain, and the derived-statistics
        caches start fresh.  Disabled (``None``) by default.
        """
        if self.statistics.refresh_due:
            self.statistics.rebuild(self.heap.all_rows())

    # -- statistics --------------------------------------------------------------------------------

    def table_profile(self) -> TableProfile:
        height = self.clustered_index.btree_height if self.clustered_index else 3
        return TableProfile(
            total_tups=self.heap.num_tuples,
            tups_per_page=self.tups_per_page,
            btree_height=height,
        )

    def correlation_profile(
        self, unclustered: CompositeKeySpec | str | Sequence[str]
    ) -> CorrelationProfile:
        """Table 2 statistics of (Au, clustered attribute).

        Served from the incrementally-maintained sample: exact while the
        sample still holds every live row, estimated beyond that.  Never
        scans the heap.
        """
        if self.clustered_attribute is None:
            raise RuntimeError("the table is not clustered")
        if isinstance(unclustered, (list, tuple)):
            unclustered = CompositeKeySpec.build(unclustered)
        return self.statistics.correlation_profile(unclustered, self.clustered_attribute)

    def attribute_cardinality(self, attribute: str) -> int:
        return self.statistics.cardinality(attribute)

    def key_cardinality(self, attributes: Sequence[str] | str) -> int:
        """Distinct-value count of a (possibly composite) key, from the sample."""
        if isinstance(attributes, str):
            attributes = [attributes]
        return self.statistics.cardinality(CompositeKeySpec.build(attributes))

    def estimate_matching_rows(self, predicates: PredicateSet) -> float:
        """Estimated rows satisfying ``predicates`` (sample selectivity x count).

        Used by LIMIT-aware plan selection and join-cardinality estimation;
        served entirely from the reservoir sample, never from the heap, and
        memoised per predicate set until the next insert/delete.
        """
        fraction = self.statistics.match_fraction(
            predicates.matches, key=tuple(predicates)
        )
        return self.num_rows * fraction

    def attribute_range(self, attribute: str) -> tuple[Any, Any] | None:
        """Incrementally-maintained ``(min, max)`` of ``attribute``."""
        return self.statistics.attribute_range(attribute)

    def describe(self) -> str:
        parts = [
            f"table {self.name}: {self.num_rows} rows, {self.num_pages} pages",
            f"clustered on {self.clustered_attribute}" if self.is_clustered else "heap",
        ]
        if self.secondary_indexes:
            parts.append(f"{len(self.secondary_indexes)} secondary indexes")
        if self.correlation_maps:
            parts.append(f"{len(self.correlation_maps)} correlation maps")
        return ", ".join(parts)
