"""Access paths: how a selection actually reads the table.

Four access methods are implemented, mirroring Sections 3 and 5 of the paper:

``SeqScan``
    Read every heap page sequentially and filter.

``PipelinedIndexScan``
    Probe the secondary B+Tree per predicated value and fetch each matching
    tuple immediately, in index order -- one random heap page read per tuple.
    This is the access pattern whose cost explodes without correlations.

``SortedIndexScan``
    PostgreSQL's bitmap heap scan (the paper's "sorted index scan"): probe the
    secondary B+Tree for all predicated values, collect the RIDs, sort them
    into a page bitmap and sweep the heap in page order.

``CorrelationMapScan``
    The CM-based plan: look up the predicated values in the CM, rewrite the
    query into clustered-index lookups on the returned clustered values (or
    clustered bucket ids), sweep those page ranges and re-apply the original
    predicate to drop false positives.

Every path streams: :meth:`AccessPath.iter_rows` is a generator built on one
shared scan kernel (page sweep + residual filter + counter charging) and an
:class:`~repro.engine.executor.ExecutionContext` that carries counters, the
LIMIT budget and the projection.  :meth:`AccessPath.execute` is a thin
materialising wrapper kept for callers that want every row at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.core.correlation_map import CorrelationMap
from repro.core.rewriter import QueryRewriter
from repro.engine.executor import ExecutionContext
from repro.engine.predicates import Between, Equals, InSet, Predicate, PredicateSet
from repro.engine.table import BUCKET_COLUMN, Table
from repro.index.bitmap import PageBitmap
from repro.index.secondary import SecondaryIndex
from repro.storage.page import RID


@dataclass
class AccessResult:
    """Rows produced by an access path plus its execution counters."""

    rows: list[dict[str, Any]] = field(default_factory=list)
    rows_examined: int = 0
    pages_visited: int = 0
    lookups: int = 0
    rewritten_sql: str | None = None


class AccessPath:
    """Base class for executable access paths."""

    name = "access"

    def __init__(self, table: Table, predicates: PredicateSet) -> None:
        self.table = table
        self.predicates = predicates

    # -- streaming interface ----------------------------------------------------

    def iter_rows(self, context: ExecutionContext | None = None) -> Iterator[dict[str, Any]]:
        """Stream matching rows, charging counters on ``context`` as they flow."""
        context = context or ExecutionContext()
        if context.limit_reached:
            return
        yield from self._stream(context)

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        raise NotImplementedError

    def execute(self, context: ExecutionContext | None = None) -> AccessResult:
        """Materialise the stream into an :class:`AccessResult` (compatibility)."""
        context = context or ExecutionContext()
        rows = list(self.iter_rows(context))
        counters = context.counters
        return AccessResult(
            rows=rows,
            rows_examined=counters.rows_examined,
            pages_visited=counters.pages_visited,
            lookups=counters.lookups,
            rewritten_sql=context.rewritten_sql,
        )

    # -- the shared scan kernel -------------------------------------------------

    def _sweep_pages(
        self, pages: Iterable[int], context: ExecutionContext
    ) -> Iterator[dict[str, Any]]:
        """Page sweep + residual filter + counter charging (all sweep paths).

        Pages are read through the buffer pool in the order given; every live
        tuple is charged as examined and filtered with the full predicate set.
        The sweep stops between rows and between pages once the LIMIT budget
        is spent, so remaining pages are never read.
        """
        heap = self.table.heap
        for page_no in pages:
            if context.limit_reached:
                return
            page = heap.read_page(page_no)
            context.counters.pages_visited += 1
            examined = 0
            try:
                for _slot, row in page.live_rows():
                    examined += 1
                    context.counters.rows_examined += 1
                    if self.predicates.matches(row):
                        yield context.emit(row)
                        if context.limit_reached:
                            break
            finally:
                # CPU is charged once per page (the counter is purely additive
                # so the total matches per-tuple charging); the finally makes
                # the charge land even when the consumer abandons the stream
                # mid-page.
                self._charge_cpu(examined)
            if context.limit_reached:
                return

    def _charge_cpu(self, rows_examined: int) -> None:
        self.table.buffer_pool.disk.charge_cpu_tuples(rows_examined)


class SeqScan(AccessPath):
    """Full sequential scan with a residual filter."""

    name = "seq_scan"

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        yield from self._sweep_pages(range(self.table.heap.num_pages), context)


def _lookup_values_for_index(
    index: SecondaryIndex, predicates: PredicateSet
) -> tuple[list[Any], list[tuple[Any, Any]]]:
    """Values and ranges an index scan should probe for ``predicates``.

    Returns ``(point_keys, ranges)``.  For composite indexes only equality
    predicates over every attribute produce point keys; otherwise the scan
    falls back to a range over the first (prefix) attribute -- the limitation
    Experiment 5 highlights for B+Tree(ra, dec).
    """
    attrs = index.attributes
    predicates_by_attr = {p.attribute: p for p in predicates.indexable_predicates()}
    if all(
        isinstance(predicates_by_attr.get(attr), (Equals, InSet)) for attr in attrs
    ):
        from itertools import product

        value_lists = [list(predicates_by_attr[attr].lookup_values) for attr in attrs]
        keys = [
            combo[0] if len(attrs) == 1 else tuple(combo)
            for combo in product(*value_lists)
        ]
        return keys, []
    prefix = attrs[0]
    predicate = predicates_by_attr.get(prefix)
    if predicate is None:
        raise ValueError(
            f"index on {attrs} is not applicable: no predicate on prefix {prefix!r}"
        )
    if isinstance(predicate, (Equals, InSet)):
        if len(attrs) == 1:
            return list(predicate.lookup_values), []
        return [], [(value, value) for value in predicate.lookup_values]
    if isinstance(predicate, Between):
        return [], [(predicate.low, predicate.high)]
    raise ValueError(f"unsupported predicate {predicate!r} for an index scan")


def _probe_index(
    index: SecondaryIndex, predicates: PredicateSet
) -> tuple[list[RID], int]:
    """All RIDs matching the indexable predicates, plus the lookup count."""
    keys, ranges = _lookup_values_for_index(index, predicates)
    rids: list[RID] = []
    lookups = 0
    for key in keys:
        rids.extend(index.probe(key))
        lookups += 1
    for low, high in ranges:
        lookups += 1
        # Composite keys can only use their leading attribute for a range
        # predicate; the remaining attributes are residual filters.
        rids.extend(index.probe_prefix_range(low, high))
    return rids, lookups


class SortedIndexScan(AccessPath):
    """Bitmap heap scan driven by a secondary B+Tree (Section 3.2)."""

    name = "sorted_index_scan"

    def __init__(
        self, table: Table, index: SecondaryIndex, predicates: PredicateSet
    ) -> None:
        super().__init__(table, predicates)
        self.index = index

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        rids, lookups = _probe_index(self.index, self.predicates)
        context.counters.lookups += lookups
        bitmap = PageBitmap(rid.page_no for rid in rids)
        yield from self._sweep_pages(bitmap.pages(), context)


class PipelinedIndexScan(AccessPath):
    """Per-tuple random fetches in index order (Section 3.1)."""

    name = "pipelined_index_scan"

    def __init__(
        self, table: Table, index: SecondaryIndex, predicates: PredicateSet
    ) -> None:
        super().__init__(table, predicates)
        self.index = index

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        rids, lookups = _probe_index(self.index, self.predicates)
        context.counters.lookups += lookups
        visited_pages: set[int] = set()
        for rid in rids:
            if context.limit_reached:
                return
            row = self.table.heap.fetch(rid)
            if rid.page_no not in visited_pages:
                visited_pages.add(rid.page_no)
                context.counters.pages_visited += 1
            if row is None:
                continue
            context.counters.rows_examined += 1
            self._charge_cpu(1)
            if self.predicates.matches(row):
                yield context.emit(row)


class ClusteredIndexScan(AccessPath):
    """A range/equality scan on the clustered attribute itself."""

    name = "clustered_index_scan"

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        clustered_attr = self.table.clustered_attribute
        index = self.table.clustered_index
        if clustered_attr is None or index is None:
            raise RuntimeError("table is not clustered")
        predicate = self.predicates.on_attribute(clustered_attr)
        if predicate is None:
            raise ValueError(f"no predicate on the clustered attribute {clustered_attr!r}")
        pages: set[int] = set()
        if isinstance(predicate, Between):
            pages.update(index.pages_for_range(predicate.low, predicate.high))
            context.counters.lookups += 1
        else:
            for value in predicate.lookup_values or ():
                pages.update(index.pages_for_value(value))
                context.counters.lookups += 1
        pages.update(self.table.tail_pages())
        yield from self._sweep_pages(sorted(pages), context)


class CorrelationMapScan(AccessPath):
    """The CM-driven plan (Section 5.2 and the Figure 4 walk-through)."""

    name = "cm_scan"

    def __init__(self, table: Table, cm: CorrelationMap, predicates: PredicateSet) -> None:
        super().__init__(table, predicates)
        self.cm = cm
        self.uses_buckets = table.cm_uses_buckets(cm.name)

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        clustered_column = BUCKET_COLUMN if self.uses_buckets else None
        rewriter = QueryRewriter(self.cm, clustered_column=clustered_column)
        constraints = self.predicates.constraints()
        rewritten = rewriter.rewrite(constraints)
        context.rewritten_sql = rewritten.to_sql(self.table.name)
        context.counters.lookups += len(rewritten.clustered_values)
        if rewritten.is_empty:
            return
        pages = self.table.pages_for_targets(
            rewritten.clustered_values, uses_buckets=self.uses_buckets
        )
        # One clustered-index descent per contiguous group of targets.
        if self.table.clustered_index is not None:
            self.table.clustered_index.charge_descents(PageBitmap(pages).num_runs)
        yield from self._sweep_pages(pages, context)
