"""Access paths: how a selection actually reads the table.

Four access methods are implemented, mirroring Sections 3 and 5 of the paper:

``SeqScan``
    Read every heap page sequentially and filter.

``PipelinedIndexScan``
    Probe the secondary B+Tree per predicated value and fetch each matching
    tuple immediately, in index order -- one random heap page read per tuple.
    This is the access pattern whose cost explodes without correlations.

``SortedIndexScan``
    PostgreSQL's bitmap heap scan (the paper's "sorted index scan"): probe the
    secondary B+Tree for all predicated values, collect the RIDs, sort them
    into a page bitmap and sweep the heap in page order.

``CorrelationMapScan``
    The CM-based plan: look up the predicated values in the CM, rewrite the
    query into clustered-index lookups on the returned clustered values (or
    clustered bucket ids), sweep those page ranges and re-apply the original
    predicate to drop false positives.

Every path streams: :meth:`AccessPath.iter_rows` is a generator built on one
shared scan kernel (page sweep + residual filter + counter charging) and an
:class:`~repro.engine.executor.ExecutionContext` that carries counters, the
LIMIT budget and the projection.  :meth:`AccessPath.execute` is a thin
materialising wrapper kept for callers that want every row at once.

Each path also speaks the batched protocol: :meth:`AccessPath.iter_batches`
produces page-aligned :class:`~repro.engine.executor.RowBatch` objects
through a second shared kernel (:meth:`AccessPath._sweep_pages_batched`)
that filters a whole page per Python-level iteration and charges counters
per page run instead of per row -- same totals, far fewer interpreter
operations.  Both kernels consume the same per-path page enumeration
(:meth:`AccessPath._target_pages`), so the two protocols cannot drift.

Join operators reuse the same paths for their inner side:
:class:`InnerPathBuilder` binds one outer row's join-key values into
``Equals`` predicates and instantiates a fresh access path per probe, so an
index-nested-loop join is nothing more than a stream of tiny single-table
queries against the inner table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.correlation_map import CorrelationMap
from repro.core.rewriter import QueryRewriter
from repro.engine.executor import (
    DEFAULT_BATCH_SIZE,
    ExecutionContext,
    RowBatch,
    _chunk_rows,
    _emit_batch,
    _truncated_batches,
    materialize,
)
from repro.engine.predicates import Between, Equals, InSet, PredicateSet
from repro.engine.table import BUCKET_COLUMN, Table
from repro.index.bitmap import PageBitmap
from repro.index.secondary import SecondaryIndex
from repro.storage.page import RID


@dataclass
class AccessResult:
    """Rows produced by an access path plus its execution counters.

    ``join_probes`` and ``rows_emitted`` mirror their
    :class:`~repro.engine.executor.ExecutionCounters` fields so that join
    EXPLAIN/ANALYZE-style reporting sees the probe work and the emission
    count instead of under-reporting it (both are zero-filled for plain
    single-table paths executed without a shared context).
    """

    rows: list[dict[str, Any]] = field(default_factory=list)
    rows_examined: int = 0
    pages_visited: int = 0
    lookups: int = 0
    join_probes: int = 0
    rows_emitted: int = 0
    rewritten_sql: str | None = None


class AccessPath:
    """Base class for executable access paths."""

    name = "access"

    def __init__(self, table: Table, predicates: PredicateSet) -> None:
        self.table = table
        self.predicates = predicates

    # -- streaming interface ----------------------------------------------------

    def iter_rows(self, context: ExecutionContext | None = None) -> Iterator[dict[str, Any]]:
        """Stream matching rows, charging counters on ``context`` as they flow."""
        context = context or ExecutionContext()
        if context.limit_reached:
            return
        yield from self._stream(context)

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        yield from self._sweep_pages(self._target_pages(context), context)

    def _target_pages(self, context: ExecutionContext) -> Iterable[int]:
        """The heap pages this path sweeps, in sweep order.

        The single per-path enumeration both scan kernels consume; any
        upfront work (index probes, CM rewrites, descent charges) happens
        here, once, whichever protocol drives the sweep.
        """
        raise NotImplementedError

    def iter_batches(
        self,
        context: ExecutionContext | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        demand: int | None = None,
        run_reads: bool = True,
    ) -> Iterator[RowBatch]:
        """Stream matching rows as page-aligned batches.

        Semantics of ``demand`` and ``run_reads`` follow
        :meth:`repro.engine.executor.PlanNode.iter_batches`.  Scan batches
        hold the live heap-page dicts; copy before mutating.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        context = context or ExecutionContext()
        if context.limit_reached or (demand is not None and demand <= 0):
            return
        stream = self._stream_batches(context, batch_size, demand, run_reads)
        yield from _truncated_batches(stream, demand)

    def _stream_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        demand: int | None,
        run_reads: bool,
    ) -> Iterator[RowBatch]:
        # A row budget, a finite demand or a context projection all carry
        # per-row semantics: serve them through the row kernel (lazy
        # production, batch delivery) so the accounting is the row path's
        # by construction.
        if (
            demand is not None
            or context.limit is not None
            or context.projection is not None
        ):
            yield from _chunk_rows(self._stream(context), batch_size, demand)
            return
        yield from self._sweep_pages_batched(
            self._target_pages(context), context, batch_size, run_reads
        )

    def project_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        run_reads: bool,
        columns: Sequence[str],
    ) -> Iterator[RowBatch]:
        """Fused scan→filter→project batch production.

        Drives the batched sweep kernel with the projection folded into the
        compiled per-page kernel (see
        :meth:`~repro.engine.predicates.PredicateSet.batch_kernel`), so a
        ProjectNode sitting directly on a scan materialises no intermediate
        full-width batch.  Only called on the vectorized path: ``context``
        must carry no LIMIT budget or context-level projection.
        """
        if context.limit_reached:
            return
        yield from self._sweep_pages_batched(
            self._target_pages(context),
            context,
            batch_size,
            run_reads,
            project=tuple(columns),
        )

    def execute(self, context: ExecutionContext | None = None) -> AccessResult:
        """Materialise the stream into an :class:`AccessResult` (compatibility)."""
        return materialize(self, context)

    def output_ordering(self) -> tuple[tuple[str, bool], ...]:
        """Columns the emitted stream is sorted by, as ``(column, ascending)``.

        Every sweep-style path (sequential, sorted-index/bitmap, clustered,
        CM) visits heap pages in ascending page order, so its output carries
        the heap's :meth:`~repro.engine.table.Table.stream_ordering` -- the
        clustered attribute, while no unsorted tail has grown.  The planner
        uses this to plan ``ORDER BY`` sorts away (and
        :class:`PipelinedIndexScan` overrides it: that path emits in
        index-probe order, not heap order).
        """
        return self.table.stream_ordering()

    # -- the shared scan kernel -------------------------------------------------

    def _visibility(
        self, context: ExecutionContext
    ) -> Callable[[Mapping[str, Any]], bool] | None:
        """The MVCC row filter for this sweep, or ``None`` when not needed.

        ``None`` -- the pre-MVCC fast path -- whenever the context carries no
        snapshot, so existing workloads pay nothing (``Database.run_query``
        only attaches a snapshot once a table holds versioned rows; the
        scheduler always attaches one, because versions may first appear
        *mid-scan* under concurrent writers, and unversioned rows pass the
        filter trivially).  Both kernels apply the filter *after* charging
        the row as examined and *before* the predicates: an invisible
        version costs exactly what a non-matching row costs, in both
        protocols, keeping the row/batch parity contract intact under MVCC.
        """
        snapshot = context.snapshot
        if snapshot is None:
            return None
        return snapshot.visible

    def _sweep_pages(
        self, pages: Iterable[int], context: ExecutionContext
    ) -> Iterator[dict[str, Any]]:
        """Page sweep + residual filter + counter charging (all sweep paths).

        Pages are read through the buffer pool in the order given; every live
        tuple is charged as examined and filtered with the full predicate set.
        The sweep stops between rows and between pages once the LIMIT budget
        is spent, so remaining pages are never read.
        """
        heap = self.table.heap
        visible = self._visibility(context)
        for page_no in pages:
            if context.limit_reached:
                return
            page = heap.read_page(page_no)
            context.counters.pages_visited += 1
            examined = 0
            try:
                for _slot, row in page.live_rows():
                    examined += 1
                    context.counters.rows_examined += 1
                    if visible is not None and not visible(row):
                        continue
                    if self.predicates.matches(row):
                        yield context.emit(row)
                        if context.limit_reached:
                            break
            finally:
                # CPU is charged once per page (the counter is purely additive
                # so the total matches per-tuple charging); the finally makes
                # the charge land even when the consumer abandons the stream
                # mid-page.
                self._charge_cpu(examined)
            if context.limit_reached:
                return

    def _sweep_pages_batched(
        self,
        pages: Iterable[int],
        context: ExecutionContext,
        batch_size: int,
        run_reads: bool,
        project: tuple[str, ...] | None = None,
    ) -> Iterator[RowBatch]:
        """Batched twin of :meth:`_sweep_pages`: filter a page per iteration.

        Pages are read in chunks sized to round ``batch_size`` up to whole
        pages (page-aligned batches); each chunk of consecutive pages is
        charged through one :meth:`~repro.storage.heap.HeapFile.read_pages`
        run, each page's live tuples are filtered with one compiled
        filter(+project) kernel pass, and the counters are bumped once per
        page/chunk -- identical totals to the per-row kernel with a fraction
        of its interpreter operations.

        With ``project`` the kernel's output element is a fresh dict of just
        those columns (the scan→filter→project fusion entry point,
        :meth:`project_batches`); predicates still see the full rows.

        With ``run_reads=False`` (the consumer interleaves its own I/O, e.g.
        a probe join's inner lookups) the kernel reads and yields one page
        at a time, preserving the exact read order -- and therefore the
        sequential/random classification -- of the row-at-a-time sweep.
        """
        heap = self.table.heap
        counters = context.counters
        visible = self._visibility(context)
        if self.predicates or project is not None:
            kernel = self.predicates.batch_kernel(project)
        else:
            kernel = None
        if run_reads:
            pages_per_chunk = max(1, -(-batch_size // max(1, heap.tups_per_page)))
        else:
            pages_per_chunk = 1
        page_numbers = iter(pages)
        batch = RowBatch()
        while True:
            chunk = list(islice(page_numbers, pages_per_chunk))
            if not chunk:
                break
            examined = 0
            try:
                for page in heap.read_pages(chunk):
                    counters.pages_visited += 1
                    live = [row for row in page.slots if row is not None]
                    examined += len(live)
                    if visible is not None:
                        live = [row for row in live if visible(row)]
                    if kernel is None:
                        batch.extend(live)
                    else:
                        batch.extend(kernel(live))
            finally:
                if examined:
                    counters.rows_examined += examined
                    self._charge_cpu(examined)
            if len(batch) >= batch_size or (batch and not run_reads):
                yield _emit_batch(context, batch)
                batch = RowBatch()
        if batch:
            yield _emit_batch(context, batch)

    def _charge_cpu(self, rows_examined: int) -> None:
        self.table.buffer_pool.disk.charge_cpu_tuples(rows_examined)


class SeqScan(AccessPath):
    """Full sequential scan with a residual filter."""

    name = "seq_scan"

    def _target_pages(self, context: ExecutionContext) -> Iterable[int]:
        return range(self.table.heap.num_pages)


def _lookup_values_for_index(
    index: SecondaryIndex, predicates: PredicateSet
) -> tuple[list[Any], list[tuple[Any, Any]]]:
    """Values and ranges an index scan should probe for ``predicates``.

    Returns ``(point_keys, ranges)``.  For composite indexes only equality
    predicates over every attribute produce point keys; otherwise the scan
    falls back to a range over the first (prefix) attribute -- the limitation
    Experiment 5 highlights for B+Tree(ra, dec).
    """
    attrs = index.attributes
    # Most selective predicate per attribute: an inner-probe equality beats a
    # local range filter on the same column.
    predicates_by_attr = predicates.best_by_attribute()
    if all(
        isinstance(predicates_by_attr.get(attr), (Equals, InSet)) for attr in attrs
    ):
        from itertools import product

        value_lists = [list(predicates_by_attr[attr].lookup_values) for attr in attrs]
        keys = [
            combo[0] if len(attrs) == 1 else tuple(combo)
            for combo in product(*value_lists)
        ]
        return keys, []
    prefix = attrs[0]
    predicate = predicates_by_attr.get(prefix)
    if predicate is None:
        raise ValueError(
            f"index on {attrs} is not applicable: no predicate on prefix {prefix!r}"
        )
    if isinstance(predicate, (Equals, InSet)):
        if len(attrs) == 1:
            return list(predicate.lookup_values), []
        return [], [(value, value) for value in predicate.lookup_values]
    if isinstance(predicate, Between):
        return [], [(predicate.low, predicate.high)]
    raise ValueError(f"unsupported predicate {predicate!r} for an index scan")


def _probe_index(
    index: SecondaryIndex, predicates: PredicateSet
) -> tuple[list[RID], int]:
    """All RIDs matching the indexable predicates, plus the lookup count."""
    keys, ranges = _lookup_values_for_index(index, predicates)
    rids: list[RID] = []
    lookups = 0
    for key in keys:
        rids.extend(index.probe(key))
        lookups += 1
    for low, high in ranges:
        lookups += 1
        # Composite keys can only use their leading attribute for a range
        # predicate; the remaining attributes are residual filters.
        rids.extend(index.probe_prefix_range(low, high))
    return rids, lookups


class SortedIndexScan(AccessPath):
    """Bitmap heap scan driven by a secondary B+Tree (Section 3.2)."""

    name = "sorted_index_scan"

    def __init__(
        self, table: Table, index: SecondaryIndex, predicates: PredicateSet
    ) -> None:
        super().__init__(table, predicates)
        self.index = index

    def _target_pages(self, context: ExecutionContext) -> Iterable[int]:
        rids, lookups = _probe_index(self.index, self.predicates)
        context.counters.lookups += lookups
        bitmap = PageBitmap(rid.page_no for rid in rids)
        return bitmap.pages()


class PipelinedIndexScan(AccessPath):
    """Per-tuple random fetches in index order (Section 3.1)."""

    name = "pipelined_index_scan"

    def output_ordering(self) -> tuple[tuple[str, bool], ...]:
        """Rows come back in index-probe order, not heap (clustered) order."""
        return ()

    def __init__(
        self, table: Table, index: SecondaryIndex, predicates: PredicateSet
    ) -> None:
        super().__init__(table, predicates)
        self.index = index

    def _stream(self, context: ExecutionContext) -> Iterator[dict[str, Any]]:
        rids, lookups = _probe_index(self.index, self.predicates)
        context.counters.lookups += lookups
        visible = self._visibility(context)
        visited_pages: set[int] = set()
        for rid in rids:
            if context.limit_reached:
                return
            row = self.table.heap.fetch(rid)
            if rid.page_no not in visited_pages:
                visited_pages.add(rid.page_no)
                context.counters.pages_visited += 1
            if row is None:
                continue
            context.counters.rows_examined += 1
            self._charge_cpu(1)
            if visible is not None and not visible(row):
                continue
            if self.predicates.matches(row):
                yield context.emit(row)

    def _stream_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        demand: int | None,
        run_reads: bool,
    ) -> Iterator[RowBatch]:
        # Per-tuple random fetches have no page runs to exploit; the batched
        # variant only amortises delivery and counter charging.  Beneath an
        # I/O-interleaving consumer (run_reads=False) fetches must alternate
        # with the consumer's reads exactly as in the row pipeline, so fall
        # back to chunked row production there.
        if (
            not run_reads
            or demand is not None
            or context.limit is not None
            or context.projection is not None
        ):
            yield from _chunk_rows(self._stream(context), batch_size, demand)
            return
        rids, lookups = _probe_index(self.index, self.predicates)
        context.counters.lookups += lookups
        counters = context.counters
        heap = self.table.heap
        matches = self.predicates.matches
        visible = self._visibility(context)
        visited_pages: set[int] = set()
        batch = RowBatch()
        examined = 0
        try:
            for rid in rids:
                row = heap.fetch(rid)
                if rid.page_no not in visited_pages:
                    visited_pages.add(rid.page_no)
                    counters.pages_visited += 1
                if row is None:
                    continue
                examined += 1
                if (visible is None or visible(row)) and matches(row):
                    batch.append(row)
                if len(batch) >= batch_size:
                    counters.rows_examined += examined
                    self._charge_cpu(examined)
                    examined = 0
                    yield _emit_batch(context, batch)
                    batch = RowBatch()
        finally:
            if examined:
                counters.rows_examined += examined
                self._charge_cpu(examined)
        if batch:
            yield _emit_batch(context, batch)

    def project_batches(
        self,
        context: ExecutionContext,
        batch_size: int,
        run_reads: bool,
        columns: Sequence[str],
    ) -> Iterator[RowBatch]:
        """Probe-order fetches have no page sweep to fuse the projection
        into: project each delivered batch with one comprehension instead
        (same accounting, still no full-width batch handed upward)."""
        columns = tuple(columns)
        for batch in self._stream_batches(context, batch_size, None, run_reads):
            yield RowBatch(
                [{column: row[column] for column in columns} for row in batch]
            )


class ClusteredIndexScan(AccessPath):
    """A range/equality scan on the clustered attribute itself."""

    name = "clustered_index_scan"

    def _target_pages(self, context: ExecutionContext) -> Iterable[int]:
        clustered_attr = self.table.clustered_attribute
        index = self.table.clustered_index
        if clustered_attr is None or index is None:
            raise RuntimeError("table is not clustered")
        predicate = self.predicates.on_attribute(clustered_attr)
        if predicate is None:
            raise ValueError(f"no predicate on the clustered attribute {clustered_attr!r}")
        pages: set[int] = set()
        if isinstance(predicate, Between):
            pages.update(index.pages_for_range(predicate.low, predicate.high))
            context.counters.lookups += 1
        else:
            for value in predicate.lookup_values or ():
                pages.update(index.pages_for_value(value))
                context.counters.lookups += 1
        pages.update(self.table.tail_pages())
        return sorted(pages)


class CorrelationMapScan(AccessPath):
    """The CM-driven plan (Section 5.2 and the Figure 4 walk-through)."""

    name = "cm_scan"

    def __init__(self, table: Table, cm: CorrelationMap, predicates: PredicateSet) -> None:
        super().__init__(table, predicates)
        self.cm = cm
        self.uses_buckets = table.cm_uses_buckets(cm.name)

    def _target_pages(self, context: ExecutionContext) -> Iterable[int]:
        clustered_column = BUCKET_COLUMN if self.uses_buckets else None
        rewriter = QueryRewriter(self.cm, clustered_column=clustered_column)
        constraints = self.predicates.constraints()
        rewritten = rewriter.rewrite(constraints)
        if context.report_rewritten_sql:
            context.rewritten_sql = rewritten.to_sql(self.table.name)
        context.counters.lookups += len(rewritten.clustered_values)
        if rewritten.is_empty:
            return ()
        pages = self.table.pages_for_targets(
            rewritten.clustered_values, uses_buckets=self.uses_buckets
        )
        # One clustered-index descent per contiguous group of targets.
        if self.table.clustered_index is not None:
            self.table.clustered_index.charge_descents(PageBitmap(pages).num_runs)
        return pages


#: Inner-path strategies a join planner may select (builder ``strategy=``).
INNER_STRATEGIES = (
    "seq_scan",
    "clustered_index_scan",
    "sorted_index_scan",
    "cm_scan",
)


class InnerPathBuilder:
    """Builds, per outer row, a fresh inner access path with join keys bound.

    A join operator calls :meth:`bind` once per outer row; the builder turns
    the outer row's join-key values into ``Equals`` predicates, appends them
    to the joined table's local predicates, and instantiates the access path
    the planner selected:

    * ``seq_scan`` -- a full inner sweep per probe (nested-loop join); the
      bound equalities act purely as residual filters;
    * ``clustered_index_scan`` -- the inner table is clustered on the join
      key, so each probe is a clustered-index range lookup;
    * ``sorted_index_scan`` -- probe a secondary B+Tree on the join key and
      sweep the matching pages in order;
    * ``cm_scan`` -- look the join value up in a correlation map and sweep
      the co-occurring clustered buckets (the CM-guided inner path; cheap
      when the join key correlates with the inner clustered key).

    Because the bound equalities are ordinary predicates, every strategy
    verifies the join condition itself -- false positives from a CM's bucket
    granularity are dropped by the shared residual filter, exactly as in the
    single-table case.
    """

    def __init__(
        self,
        table: Table,
        join_on: Sequence[tuple[str, str]],
        predicates: PredicateSet,
        strategy: str,
        *,
        index: SecondaryIndex | None = None,
        cm: CorrelationMap | None = None,
    ) -> None:
        if strategy not in INNER_STRATEGIES:
            raise ValueError(f"unknown inner strategy {strategy!r}")
        if strategy == "sorted_index_scan" and index is None:
            raise ValueError("sorted_index_scan inner paths need an index")
        if strategy == "cm_scan" and cm is None:
            raise ValueError("cm_scan inner paths need a correlation map")
        self.table = table
        self.join_on = tuple(join_on)
        self.predicates = predicates
        self.strategy = strategy
        self.index = index
        self.cm = cm

    def bind(self, outer_row: Mapping[str, Any]) -> AccessPath:
        """The inner access path for one outer row's join-key values."""
        bound = tuple(
            Equals(inner_column, outer_row[outer_column])
            for outer_column, inner_column in self.join_on
        )
        predicates = PredicateSet(tuple(self.predicates) + bound)
        if self.strategy == "clustered_index_scan":
            return ClusteredIndexScan(self.table, predicates)
        if self.strategy == "sorted_index_scan":
            assert self.index is not None
            return SortedIndexScan(self.table, self.index, predicates)
        if self.strategy == "cm_scan":
            assert self.cm is not None
            return CorrelationMapScan(self.table, self.cm, predicates)
        return SeqScan(self.table, predicates)

    def describe(self) -> str:
        keys = ", ".join(inner for _outer, inner in self.join_on)
        if self.strategy == "clustered_index_scan":
            via = f"clustered({self.table.clustered_attribute})"
        elif self.strategy == "sorted_index_scan":
            assert self.index is not None
            via = self.index.name
        elif self.strategy == "cm_scan":
            assert self.cm is not None
            via = self.cm.name
        else:
            via = "seq"
        return f"{self.table.name}({keys}) via {via}"
