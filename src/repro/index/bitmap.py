"""Page bitmaps used by sorted (bitmap) index scans.

PostgreSQL's bitmap heap scan -- the "sorted index scan" of Section 3.2 --
collects the heap pages that contain matching tuples into a bitmap, then
visits them in ascending page order so that the disk head sweeps the file
once.  This class models that bitmap and reports how fragmented the resulting
access pattern is (number of contiguous page runs), which determines how many
seeks the sweep performs.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class PageBitmap:
    """A set of heap page numbers visited in ascending order."""

    def __init__(self, pages: Iterable[int] = ()) -> None:
        self._pages: set[int] = set()
        for page_no in pages:
            self.add(page_no)

    def add(self, page_no: int) -> None:
        if page_no < 0:
            raise ValueError("page numbers must be non-negative")
        self._pages.add(page_no)

    def add_range(self, start: int, end: int) -> None:
        """Add the inclusive page range ``[start, end]``."""
        if end < start:
            raise ValueError("range end must not precede start")
        self._pages.update(range(start, end + 1))

    def union(self, other: "PageBitmap") -> "PageBitmap":
        result = PageBitmap()
        result._pages = self._pages | other._pages
        return result

    def intersection(self, other: "PageBitmap") -> "PageBitmap":
        result = PageBitmap()
        result._pages = self._pages & other._pages
        return result

    def __contains__(self, page_no: int) -> bool:
        return page_no in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def __bool__(self) -> bool:
        return bool(self._pages)

    def __iter__(self) -> Iterator[int]:
        """Iterate pages in ascending order (the sweep order)."""
        return iter(sorted(self._pages))

    def pages(self) -> list[int]:
        return sorted(self._pages)

    def runs(self) -> list[tuple[int, int]]:
        """Contiguous page runs as inclusive ``(start, end)`` pairs."""
        runs: list[tuple[int, int]] = []
        start = prev = None
        for page_no in sorted(self._pages):
            if start is None:
                start = prev = page_no
            elif page_no == prev + 1:
                prev = page_no
            else:
                runs.append((start, prev))
                start = prev = page_no
        if start is not None:
            runs.append((start, prev))
        return runs

    @property
    def num_runs(self) -> int:
        """Number of contiguous runs; each run costs one seek on disk."""
        return len(self.runs())

    def fraction_of(self, total_pages: int) -> float:
        """Fraction of the table's pages this bitmap touches."""
        if total_pages <= 0:
            return 0.0
        return len(self._pages) / total_pages
