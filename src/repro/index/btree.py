"""A B+Tree supporting duplicate keys, range scans and page accounting.

This is the structure behind both the clustered index and conventional
secondary indexes in the reproduction.  Leaves store, for every key, the list
of payloads inserted under it (record identifiers for secondary indexes).
Each node is assigned a page number so that higher layers can charge
buffer-pool traffic for root-to-leaf traversals and for the leaf pages dirtied
by maintenance -- the mechanism that makes many large B+Trees expensive to
maintain in the paper's Experiment 3.

Deletion is implemented lazily (entries are removed, keys with no remaining
entries are dropped from their leaf, but nodes are not rebalanced).  This
matches the behaviour of PostgreSQL's nbtree, which also leaves underfull
pages in place, and preserves all search invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

DEFAULT_ORDER = 64


@dataclass(eq=False)
class _Node:
    leaf: bool
    page_no: int
    keys: list[Any] = field(default_factory=list)
    #: Internal nodes: child pointers (len == len(keys) + 1).
    children: list["_Node"] = field(default_factory=list)
    #: Leaf nodes: one payload list per key.
    values: list[list[Any]] = field(default_factory=list)
    next_leaf: "_Node | None" = None


class BPlusTree:
    """An order-``order`` B+Tree mapping keys to lists of payloads.

    Parameters
    ----------
    order:
        Maximum number of keys per node.  The fanout determines the height
        (``btree_height`` in the paper's cost model) and the number of leaf
        pages the index occupies.
    name:
        File name used when charging node accesses to a buffer pool.
    """

    def __init__(self, order: int = DEFAULT_ORDER, *, name: str = "btree") -> None:
        if order < 4:
            raise ValueError("B+Tree order must be at least 4")
        self.order = order
        self.name = name
        self._next_page_no = 0
        self.root: _Node = self._new_node(leaf=True)
        self._num_keys = 0
        self._num_entries = 0

    # -- node management -----------------------------------------------------

    def _new_node(self, *, leaf: bool) -> _Node:
        node = _Node(leaf=leaf, page_no=self._next_page_no)
        self._next_page_no += 1
        return node

    # -- basic properties ----------------------------------------------------

    @property
    def num_keys(self) -> int:
        """Number of distinct keys currently stored."""
        return self._num_keys

    @property
    def num_entries(self) -> int:
        """Total number of (key, payload) entries, counting duplicates."""
        return self._num_entries

    @property
    def height(self) -> int:
        """Number of levels from root to leaf (1 for a single-leaf tree)."""
        height = 1
        node = self.root
        while not node.leaf:
            node = node.children[0]
            height += 1
        return height

    @property
    def num_nodes(self) -> int:
        return sum(1 for _ in self._walk_nodes())

    @property
    def num_leaf_nodes(self) -> int:
        return sum(1 for node in self._walk_nodes() if node.leaf)

    def _walk_nodes(self) -> Iterator[_Node]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.leaf:
                stack.extend(node.children)

    # -- search ----------------------------------------------------------------

    def _find_leaf(self, key: Any) -> tuple[_Node, list[_Node]]:
        """Return the leaf that would hold ``key`` and the root-to-leaf path."""
        node = self.root
        path = [node]
        while not node.leaf:
            idx = self._child_index(node, key)
            node = node.children[idx]
            path.append(node)
        return node, path

    @staticmethod
    def _child_index(node: _Node, key: Any) -> int:
        idx = 0
        while idx < len(node.keys) and key >= node.keys[idx]:
            idx += 1
        return idx

    def search(self, key: Any) -> list[Any]:
        """Return the payload list for ``key`` (empty if absent)."""
        leaf, _path = self._find_leaf(key)
        idx = self._leaf_index(leaf, key)
        if idx is None:
            return []
        return list(leaf.values[idx])

    def search_path(self, key: Any) -> tuple[list[Any], list[int]]:
        """Like :meth:`search` but also return the page numbers traversed."""
        leaf, path = self._find_leaf(key)
        idx = self._leaf_index(leaf, key)
        pages = [node.page_no for node in path]
        if idx is None:
            return [], pages
        return list(leaf.values[idx]), pages

    @staticmethod
    def _leaf_index(leaf: _Node, key: Any) -> int | None:
        import bisect

        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return idx
        return None

    def __contains__(self, key: Any) -> bool:
        return bool(self.search(key))

    # -- range scans -----------------------------------------------------------

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, list[Any]]]:
        """Yield ``(key, payloads)`` for keys in ``[low, high]`` in key order.

        ``None`` bounds are open (scan from the first / to the last key).
        """
        import bisect

        if low is None:
            leaf = self._leftmost_leaf()
            idx = 0
        else:
            leaf, _ = self._find_leaf(low)
            idx = bisect.bisect_left(leaf.keys, low)
            if not include_low:
                while idx < len(leaf.keys) and leaf.keys[idx] == low:
                    idx += 1
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if high is not None:
                    if key > high or (not include_high and key == high):
                        return
                yield key, list(leaf.values[idx])
                idx += 1
            leaf = leaf.next_leaf
            idx = 0

    def _leftmost_leaf(self) -> _Node:
        node = self.root
        while not node.leaf:
            node = node.children[0]
        return node

    def items(self) -> Iterator[tuple[Any, list[Any]]]:
        """All entries in key order."""
        return self.range_scan()

    def keys(self) -> Iterator[Any]:
        for key, _values in self.items():
            yield key

    # -- insertion ---------------------------------------------------------------

    def insert(self, key: Any, payload: Any) -> list[int]:
        """Insert ``payload`` under ``key``; returns the page numbers modified.

        Duplicate keys accumulate payloads.  Node splits propagate upward and
        may grow the tree by one level.
        """
        import bisect

        leaf, path = self._find_leaf(key)
        modified = [node.page_no for node in path]
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.values[idx].append(payload)
        else:
            leaf.keys.insert(idx, key)
            leaf.values.insert(idx, [payload])
            self._num_keys += 1
        self._num_entries += 1

        if len(leaf.keys) > self.order:
            modified.extend(self._split(path))
        return modified

    def _split(self, path: list[_Node]) -> list[int]:
        """Split the last node of ``path``, cascading up as needed."""
        modified: list[int] = []
        node = path[-1]
        while len(node.keys) > self.order:
            mid = len(node.keys) // 2
            if node.leaf:
                sibling = self._new_node(leaf=True)
                sibling.keys = node.keys[mid:]
                sibling.values = node.values[mid:]
                node.keys = node.keys[:mid]
                node.values = node.values[:mid]
                sibling.next_leaf = node.next_leaf
                node.next_leaf = sibling
                separator = sibling.keys[0]
            else:
                sibling = self._new_node(leaf=False)
                separator = node.keys[mid]
                sibling.keys = node.keys[mid + 1 :]
                sibling.children = node.children[mid + 1 :]
                node.keys = node.keys[:mid]
                node.children = node.children[: mid + 1]
            modified.extend([node.page_no, sibling.page_no])

            if node is self.root:
                new_root = self._new_node(leaf=False)
                new_root.keys = [separator]
                new_root.children = [node, sibling]
                self.root = new_root
                modified.append(new_root.page_no)
                return modified

            parent = path[path.index(node) - 1]
            idx = parent.children.index(node)
            parent.keys.insert(idx, separator)
            parent.children.insert(idx + 1, sibling)
            modified.append(parent.page_no)
            node = parent
        return modified

    # -- deletion -----------------------------------------------------------------

    def delete(self, key: Any, payload: Any = None) -> list[int]:
        """Delete one entry under ``key``.

        When ``payload`` is given only that payload is removed (the first
        occurrence); otherwise one arbitrary payload is removed.  The key
        disappears once its payload list is empty.  Returns the page numbers
        modified; an empty list means the key (or payload) was not found.
        """
        leaf, path = self._find_leaf(key)
        idx = self._leaf_index(leaf, key)
        if idx is None:
            return []
        payloads = leaf.values[idx]
        if payload is None:
            payloads.pop()
        else:
            try:
                payloads.remove(payload)
            except ValueError:
                return []
        self._num_entries -= 1
        if not payloads:
            leaf.keys.pop(idx)
            leaf.values.pop(idx)
            self._num_keys -= 1
        return [node.page_no for node in path]

    # -- bulk operations ------------------------------------------------------------

    def bulk_load(self, items: list[tuple[Any, Any]]) -> None:
        """Build the tree from ``(key, payload)`` pairs (faster than inserts)."""
        for key, payload in sorted(items, key=lambda item: item[0]):
            self.insert(key, payload)

    # -- size accounting --------------------------------------------------------------

    def size_pages(self) -> int:
        """Number of node pages the tree occupies."""
        return self.num_nodes

    def check_invariants(self) -> None:
        """Validate ordering and structural invariants (used by tests)."""
        def _check(node: _Node, low: Any, high: Any) -> None:
            assert node.keys == sorted(node.keys), "keys must be sorted"
            for key in node.keys:
                if low is not None:
                    assert key >= low, "key below subtree lower bound"
                if high is not None:
                    assert key < high, "key above subtree upper bound"
            if node.leaf:
                assert len(node.keys) == len(node.values)
            else:
                assert len(node.children) == len(node.keys) + 1
                bounds = [low] + node.keys + [high]
                for child, (child_low, child_high) in zip(
                    node.children, zip(bounds[:-1], bounds[1:])
                ):
                    _check(child, child_low, child_high)

        _check(self.root, None, None)
        collected = sum(len(values) for _key, values in self.items())
        assert collected == self._num_entries, "entry count mismatch"
        assert sum(1 for _ in self.keys()) == self._num_keys, "key count mismatch"
