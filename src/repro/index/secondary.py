"""Secondary (unclustered) B+Tree indexes.

A secondary index maps values of one or more unclustered attributes to the
RIDs of the tuples containing them.  Like PostgreSQL's nbtree, the index is
*dense*: every tuple contributes one entry, keyed by ``(value, RID)`` so that
duplicates of a popular value spread across many leaf pages.  This is what
makes secondary indexes large (hundreds of megabytes for the paper's data
sets), what fills the buffer pool with dirty leaf pages during updates, and
what correlation maps replace with a value-level mapping a few orders of
magnitude smaller.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.index.btree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.page import RID

#: Rough per-entry byte cost used for size reporting: key bytes + 6-byte RID
#: + item header, matching PostgreSQL's ~20 byte index tuple overhead.
_ENTRY_OVERHEAD_BYTES = 20


def _key_size_bytes(key: Any) -> int:
    if isinstance(key, tuple):
        return sum(_key_size_bytes(part) for part in key)
    if isinstance(key, str):
        return max(4, len(key))
    if isinstance(key, float):
        return 8
    return 8


class SecondaryIndex:
    """A dense unclustered B+Tree index over ``attributes`` of a table.

    Parameters
    ----------
    name:
        Index (and file) name used for buffer-pool accounting.
    attributes:
        Attribute names forming the index key, in order.  Composite keys are
        stored as tuples, so only a prefix of the key can drive range
        predicates (the limitation Experiment 5 demonstrates).
    buffer_pool:
        Shared buffer pool; traversals and maintenance charge page accesses.
    order:
        B+Tree fanout (index entries per node page).
    """

    def __init__(
        self,
        name: str,
        attributes: Iterable[str],
        buffer_pool: BufferPool,
        *,
        order: int = 256,
    ) -> None:
        self.name = name
        self.attributes = tuple(attributes)
        if not self.attributes:
            raise ValueError("a secondary index needs at least one attribute")
        self.buffer_pool = buffer_pool
        self.tree = BPlusTree(order=order, name=name)
        self._key_bytes_total = 0

    # -- key handling ----------------------------------------------------------

    def key_of(self, row: dict[str, Any]) -> Any:
        """Extract the index key for ``row`` (a scalar for single columns)."""
        if len(self.attributes) == 1:
            return row[self.attributes[0]]
        return tuple(row[attr] for attr in self.attributes)

    @staticmethod
    def _entry_key(key: Any, rid: RID) -> tuple[Any, RID]:
        """The dense tree key: the attribute value(s) plus the heap TID."""
        return (key, rid)

    # -- build / maintenance -----------------------------------------------------

    def build(self, rows_with_rids: Iterable[tuple[RID, dict[str, Any]]]) -> None:
        """Bulk build the index (no buffer-pool traffic, like CREATE INDEX)."""
        for rid, row in rows_with_rids:
            key = self.key_of(row)
            self.tree.insert(self._entry_key(key, rid), rid)
            self._key_bytes_total += _key_size_bytes(key)

    def insert(self, rid: RID, row: dict[str, Any], *, charge_io: bool = True) -> None:
        """Index maintenance for one inserted tuple.

        The root-to-leaf path is read through the buffer pool and the leaf
        (plus any split pages) is dirtied, which is what fills the buffer pool
        with dirty index pages during bulk updates.
        """
        key = self.key_of(row)
        modified = self.tree.insert(self._entry_key(key, rid), rid)
        self._key_bytes_total += _key_size_bytes(key)
        if charge_io:
            self._charge_path(modified)

    def delete(self, rid: RID, row: dict[str, Any], *, charge_io: bool = True) -> None:
        key = self.key_of(row)
        modified = self.tree.delete(self._entry_key(key, rid), rid)
        if modified:
            self._key_bytes_total -= _key_size_bytes(key)
        if charge_io and modified:
            self._charge_path(modified)

    def _charge_path(self, page_numbers: list[int]) -> None:
        if not page_numbers:
            return
        # All but the last traversed page are interior reads; the final pages
        # (leaf and split victims) are modified.
        for page_no in page_numbers[:-1]:
            self.buffer_pool.access(self.name, page_no)
        self.buffer_pool.access(self.name, page_numbers[-1], dirty=True)

    # -- lookups -------------------------------------------------------------------

    def _charge_scan(self, entries_scanned: int) -> None:
        """Charge one descent plus the leaf pages walked along the leaf chain."""
        descent = self.tree.height
        leaf_pages = max(1, -(-entries_scanned // max(1, self.tree.order)))
        for offset in range(descent + leaf_pages):
            self.buffer_pool.access(self.name, offset)

    def _iter_entries_from(self, key: Any) -> Iterator[tuple[Any, RID]]:
        """Iterate ``(value, rid)`` entries starting at the first entry >= key."""
        for entry_key, _payloads in self.tree.range_scan((key,)):
            yield entry_key

    def probe(self, key: Any, *, charge_io: bool = True) -> list[RID]:
        """Return the RIDs stored under ``key``, charging a root-to-leaf read."""
        rids = []
        scanned = 0
        for value, rid in self._iter_entries_from(key):
            if value != key:
                break
            rids.append(rid)
            scanned += 1
        if charge_io:
            self._charge_scan(scanned)
        return rids

    def probe_range(
        self,
        low: Any = None,
        high: Any = None,
        *,
        charge_io: bool = True,
    ) -> list[RID]:
        """Return RIDs for all keys in the inclusive range ``[low, high]``."""
        rids: list[RID] = []
        scanned = 0
        if low is None:
            iterator = (entry for entry, _ in self.tree.range_scan())
        else:
            iterator = self._iter_entries_from(low)
        for value, rid in iterator:
            if high is not None and value > high:
                break
            rids.append(rid)
            scanned += 1
        if charge_io:
            self._charge_scan(scanned)
        return rids

    def probe_prefix_range(
        self, low: Any = None, high: Any = None, *, charge_io: bool = True
    ) -> list[RID]:
        """RIDs whose *first* key attribute lies in ``[low, high]``.

        Composite indexes can only use the leading attribute of their key for
        a range predicate (the B+Tree(ra, dec) limitation of Experiment 5);
        the remaining attributes must be filtered on the fetched tuples.
        """
        if len(self.attributes) == 1:
            return self.probe_range(low, high, charge_io=charge_io)
        rids: list[RID] = []
        scanned = 0
        if low is None:
            iterator = (entry for entry, _ in self.tree.range_scan())
        else:
            iterator = (entry for entry, _ in self.tree.range_scan(((low,),)))
        for value, rid in iterator:
            if high is not None and value[0] > high:
                break
            rids.append(rid)
            scanned += 1
        if charge_io:
            self._charge_scan(scanned)
        return rids

    def distinct_keys(self) -> list[Any]:
        """All distinct attribute values in key order (catalog use; no I/O)."""
        seen: list[Any] = []
        for entry_key, _payloads in self.tree.items():
            value = entry_key[0]
            if not seen or seen[-1] != value:
                seen.append(value)
        return seen

    # -- size accounting ---------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return self.tree.num_entries

    @property
    def btree_height(self) -> int:
        return self.tree.height

    def size_bytes(self) -> int:
        """Approximate on-disk size: dense entries plus node overhead."""
        return self._key_bytes_total + self.tree.num_entries * _ENTRY_OVERHEAD_BYTES

    def size_pages(self) -> int:
        page_size = self.buffer_pool.disk.params.page_size_bytes
        return max(1, -(-self.size_bytes() // page_size))

    def num_leaf_pages(self) -> int:
        """Number of leaf node pages (what competes for the buffer pool)."""
        return self.tree.num_leaf_nodes
