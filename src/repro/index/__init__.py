"""Index substrate: B+Trees, clustered/secondary indexes and page bitmaps."""

from repro.index.btree import BPlusTree
from repro.index.secondary import SecondaryIndex
from repro.index.clustered import ClusteredIndex
from repro.index.bitmap import PageBitmap

__all__ = ["BPlusTree", "SecondaryIndex", "ClusteredIndex", "PageBitmap"]
