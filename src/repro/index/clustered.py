"""The clustered index over a heap file.

After a table is clustered on attribute ``Ac`` the heap is physically sorted
by that attribute, and the clustered index maps key values (or key ranges) to
the heap pages that may contain them.  Lookups cost ``btree_height`` random
page reads to descend the index, followed by a sequential scan of the
qualifying heap pages -- the access pattern at the heart of the paper's cost
model (Section 4.1).

The index is implemented as a sparse array of per-page key bounds (one entry
per heap page, the classic clustering-index layout) with a B+Tree-like height
charged for descents.  It also records the clustered *bucket* layout produced
by the CM Advisor's clustered-attribute bucketing (Section 6.1.1), mapping
each bucket id to its contiguous heap page range.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterable

from repro.storage.buffer_pool import BufferPool

#: Fanout assumed when deriving the height of the clustered index from its
#: number of leaf entries; 256 matches the default secondary index order.
_HEIGHT_FANOUT = 256


class ClusteredIndex:
    """Maps clustered-attribute values to heap page ranges."""

    def __init__(self, name: str, attribute: str, buffer_pool: BufferPool) -> None:
        self.name = name
        self.attribute = attribute
        self.buffer_pool = buffer_pool
        #: Per heap page: the smallest clustered key stored on it.
        self._page_min_keys: list[Any] = []
        #: Per heap page: the largest clustered key stored on it.
        self._page_max_keys: list[Any] = []
        #: Bucket id -> inclusive (first_page, last_page) range.
        self._bucket_pages: dict[Any, tuple[int, int]] = {}
        #: Bucket id -> inclusive (min_key, max_key) of clustered values.
        self._bucket_keys: dict[Any, tuple[Any, Any]] = {}

    # -- construction -----------------------------------------------------------

    def build(self, page_key_bounds: Iterable[tuple[Any, Any]]) -> None:
        """Build from per-page ``(min_key, max_key)`` bounds in page order."""
        self._page_min_keys = []
        self._page_max_keys = []
        for min_key, max_key in page_key_bounds:
            self._page_min_keys.append(min_key)
            self._page_max_keys.append(max_key)

    def register_bucket(self, bucket_id: Any, first_page: int, last_page: int,
                        min_key: Any, max_key: Any) -> None:
        """Record the heap page range covered by a clustered bucket."""
        if last_page < first_page:
            raise ValueError("bucket page range is inverted")
        self._bucket_pages[bucket_id] = (first_page, last_page)
        self._bucket_keys[bucket_id] = (min_key, max_key)

    # -- properties --------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        return len(self._page_min_keys)

    @property
    def num_buckets(self) -> int:
        return len(self._bucket_pages)

    @property
    def btree_height(self) -> int:
        """Height charged for a descent (``btree_height`` of Table 1)."""
        pages = max(1, self.num_pages)
        return max(1, math.ceil(math.log(pages, _HEIGHT_FANOUT)) + 1)

    def bucket_ids(self) -> list[Any]:
        return sorted(self._bucket_pages)

    def bucket_page_range(self, bucket_id: Any) -> tuple[int, int]:
        return self._bucket_pages[bucket_id]

    def bucket_key_range(self, bucket_id: Any) -> tuple[Any, Any]:
        return self._bucket_keys[bucket_id]

    # -- lookups ------------------------------------------------------------------

    def _charge_descent(self) -> None:
        for level in range(self.btree_height):
            self.buffer_pool.access(self.name, level)

    def charge_descents(self, n: int = 1) -> None:
        """Charge the I/O of ``n`` root-to-leaf descents of the index.

        Public entry point for executors that batch their descents (e.g. one
        per contiguous page run of a correlation-map scan).
        """
        for _ in range(max(0, n)):
            self._charge_descent()

    def pages_for_value(self, value: Any, *, charge_io: bool = True) -> list[int]:
        """Heap pages that may contain ``value`` (contiguous by construction)."""
        if charge_io:
            self._charge_descent()
        return self._pages_for_range(value, value)

    def pages_for_range(
        self, low: Any, high: Any, *, charge_io: bool = True
    ) -> list[int]:
        """Heap pages that may contain keys in ``[low, high]``."""
        if charge_io:
            self._charge_descent()
        return self._pages_for_range(low, high)

    def _pages_for_range(self, low: Any, high: Any) -> list[int]:
        if not self._page_min_keys:
            return []
        if low is None:
            first = 0
        else:
            # First page whose largest key reaches the start of the range.
            first = bisect.bisect_left(self._page_max_keys, low)
        if high is None:
            last = len(self._page_min_keys) - 1
        else:
            # Last page whose smallest key does not exceed the range end.
            last = bisect.bisect_right(self._page_min_keys, high) - 1
        if first >= len(self._page_min_keys) or last < first:
            return []
        return list(range(first, last + 1))

    def pages_for_bucket(self, bucket_id: Any, *, charge_io: bool = True) -> list[int]:
        """Heap pages covered by a clustered bucket id."""
        if bucket_id not in self._bucket_pages:
            return []
        if charge_io:
            self._charge_descent()
        first, last = self._bucket_pages[bucket_id]
        return list(range(first, last + 1))

    def key_bounds_of_page(self, page_no: int) -> tuple[Any, Any]:
        return self._page_min_keys[page_no], self._page_max_keys[page_no]
