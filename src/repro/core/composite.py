"""Composite CM keys: multiple attributes, each with its own bucketing.

Composite CMs matter when no single attribute soft-determines the clustered
attribute but a combination does -- the paper's (longitude, latitude) -> zip
code example, and the (ra, dec) -> objID correlation of Experiment 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.core.bucketing import Bucketer, IdentityBucketer


@dataclass(frozen=True)
class AttributeBucketing:
    """One attribute of a composite CM key together with its bucketer."""

    attribute: str
    bucketer: Bucketer = field(default_factory=IdentityBucketer)

    def bucket(self, value: Any) -> Any:
        return self.bucketer.bucket(value)

    def describe(self) -> str:
        description = self.bucketer.describe()
        if description == "none":
            return self.attribute
        return f"{self.attribute}({description})"


@dataclass(frozen=True)
class CompositeKeySpec:
    """Ordered list of bucketed attributes forming a CM key.

    A single-attribute CM is simply a :class:`CompositeKeySpec` of length one;
    the key is always a tuple so that lookups and size accounting treat both
    cases uniformly.
    """

    parts: tuple[AttributeBucketing, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("a CM key needs at least one attribute")
        names = [part.attribute for part in self.parts]
        if len(set(names)) != len(names):
            raise ValueError("duplicate attribute in composite key")

    @classmethod
    def build(
        cls,
        attributes: Sequence[str],
        bucketers: Mapping[str, Bucketer] | None = None,
    ) -> "CompositeKeySpec":
        """Build a spec from attribute names and an optional bucketer map."""
        bucketers = bucketers or {}
        parts = tuple(
            AttributeBucketing(attr, bucketers.get(attr, IdentityBucketer()))
            for attr in attributes
        )
        return cls(parts)

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(part.attribute for part in self.parts)

    def key_of(self, row: Mapping[str, Any]) -> tuple[Any, ...]:
        """The (bucketed) CM key of a row."""
        return tuple(part.bucket(row[part.attribute]) for part in self.parts)

    def key_of_values(self, values: Mapping[str, Any]) -> tuple[Any, ...]:
        """The CM key of a full assignment of predicate values."""
        return self.key_of(values)

    def bucket_constraints(
        self, constraints: Mapping[str, "ValueConstraint"]
    ) -> list["BucketConstraint"]:
        """Translate per-attribute predicate constraints to bucket level.

        Attributes without a constraint are unconstrained (match anything).
        """
        result = []
        for position, part in enumerate(self.parts):
            constraint = constraints.get(part.attribute)
            if constraint is None:
                result.append(BucketConstraint(position, None, None, None))
                continue
            if constraint.values is not None:
                bucketed = {part.bucket(v) for v in constraint.values}
                result.append(BucketConstraint(position, bucketed, None, None))
            else:
                low = part.bucket(constraint.low) if constraint.low is not None else None
                high = part.bucket(constraint.high) if constraint.high is not None else None
                result.append(BucketConstraint(position, None, low, high))
        return result

    def describe(self) -> str:
        return ", ".join(part.describe() for part in self.parts)

    def __len__(self) -> int:
        return len(self.parts)


@dataclass(frozen=True)
class ValueConstraint:
    """A predicate over one attribute, in value space.

    Either ``values`` (an explicit set, from ``=`` or ``IN``) or an inclusive
    ``[low, high]`` range (either bound may be ``None`` for open ranges).
    """

    values: frozenset[Any] | None = None
    low: Any = None
    high: Any = None

    @classmethod
    def equals(cls, value: Any) -> "ValueConstraint":
        return cls(values=frozenset([value]))

    @classmethod
    def in_set(cls, values: Iterable[Any]) -> "ValueConstraint":
        return cls(values=frozenset(values))

    @classmethod
    def between(cls, low: Any, high: Any) -> "ValueConstraint":
        return cls(low=low, high=high)

    def matches(self, value: Any) -> bool:
        if self.values is not None:
            return value in self.values
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True


@dataclass(frozen=True)
class BucketConstraint:
    """A predicate over one position of a composite CM key, in bucket space."""

    position: int
    buckets: frozenset[Any] | set[Any] | None
    low: Any
    high: Any

    def matches(self, bucket_key: Any) -> bool:
        if self.buckets is not None:
            return bucket_key in self.buckets
        if self.low is not None and bucket_key < self.low:
            return False
        if self.high is not None and bucket_key > self.high:
            return False
        return True


def key_matches(key: tuple[Any, ...], constraints: Sequence[BucketConstraint]) -> bool:
    """Whether a stored CM key satisfies every bucket-level constraint."""
    return all(constraint.matches(key[constraint.position]) for constraint in constraints)
