"""The paper's primary contribution: correlation maps, cost model and advisor.

Public API
----------

* :class:`~repro.core.model.HardwareParameters`,
  :class:`~repro.core.model.TableProfile`,
  :class:`~repro.core.model.CorrelationProfile` -- the statistics of Tables 1
  and 2 of the paper.
* :mod:`repro.core.cost` -- the correlation-aware analytical cost model
  (Sections 3 and 4).
* :class:`~repro.core.statistics.StatisticsCollector` -- computes the
  statistics exactly or from samples.
* :mod:`repro.core.bucketing` -- bucketing of unclustered and clustered
  attributes (Sections 5.4 and 6.1).
* :class:`~repro.core.correlation_map.CorrelationMap` -- the compressed
  access method itself (Section 5).
* :class:`~repro.core.advisor.CMAdvisor` -- the automatic designer
  (Section 6).
"""

from repro.core.model import (
    CorrelationProfile,
    HardwareParameters,
    TableProfile,
)
from repro.core.cost import (
    cm_lookup_cost,
    pipelined_lookup_cost,
    scan_cost,
    sorted_lookup_cost,
)
from repro.core.bucketing import (
    Bucketer,
    IdentityBucketer,
    QuantileBucketer,
    WidthBucketer,
    assign_clustered_buckets,
    candidate_bucketings,
)
from repro.core.composite import AttributeBucketing, CompositeKeySpec
from repro.core.correlation_map import CorrelationMap
from repro.core.statistics import StatisticsCollector, c_per_u_from_cardinalities
from repro.core.rewriter import QueryRewriter, RewrittenPredicate
from repro.core.advisor import CMAdvisor, CMDesign, Recommendation
from repro.core.clustering_advisor import ClusteringAdvisor, ClusteringBenefit

__all__ = [
    "HardwareParameters",
    "TableProfile",
    "CorrelationProfile",
    "scan_cost",
    "pipelined_lookup_cost",
    "sorted_lookup_cost",
    "cm_lookup_cost",
    "Bucketer",
    "IdentityBucketer",
    "WidthBucketer",
    "QuantileBucketer",
    "candidate_bucketings",
    "assign_clustered_buckets",
    "AttributeBucketing",
    "CompositeKeySpec",
    "CorrelationMap",
    "StatisticsCollector",
    "c_per_u_from_cardinalities",
    "QueryRewriter",
    "RewrittenPredicate",
    "CMAdvisor",
    "CMDesign",
    "Recommendation",
    "ClusteringAdvisor",
    "ClusteringBenefit",
]
