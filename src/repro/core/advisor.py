"""The CM Advisor: automatic design of correlation maps (Section 6).

Given a training workload (the attributes each query predicates, as supplied
by the DBA or collected at runtime), the advisor:

1. enumerates candidate CM keys: every non-empty subset of a query's
   predicated attributes, with every admissible bucketing of each attribute
   (Sections 6.1.2 and 6.1.3);
2. estimates each candidate's ``c_per_u`` with the Adaptive Estimator over a
   shared in-memory random sample (Section 4.2);
3. estimates each candidate's size and its query cost with the analytical
   cost model, expressed as a slowdown relative to an equivalent secondary
   B+Tree (Table 5);
4. recommends, per query, the smallest design whose estimated slowdown stays
   within the user's performance target (Section 6.2.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.core.bucketing import (
    BucketingOption,
    candidate_bucketings,
)
from repro.core.composite import AttributeBucketing, CompositeKeySpec, ValueConstraint
from repro.core.cost import CMCostInputs, cm_lookup_cost, scan_cost, sorted_lookup_cost
from repro.core.model import CorrelationProfile, HardwareParameters, TableProfile
from repro.core.statistics import StatisticsCollector

#: Per-entry byte estimates, matching the accounting in ``correlation_map`` and
#: ``secondary`` so that estimated and measured sizes are comparable.
_CM_TARGET_BYTES = 12
_CM_KEY_OVERHEAD_BYTES = 8
_BTREE_ENTRY_OVERHEAD_BYTES = 20


@dataclass(frozen=True)
class TrainingQuery:
    """One workload query, reduced to what the advisor needs.

    ``constraints`` maps each predicated attribute to its constraint; the
    advisor only uses the attribute set for candidate enumeration, plus
    ``n_lookups`` (the number of predicated values, e.g. the length of an
    ``IN`` list) for cost estimation.
    """

    constraints: Mapping[str, ValueConstraint] = field(default_factory=dict)
    n_lookups: int = 1
    name: str = ""

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(sorted(self.constraints))

    @classmethod
    def over_attributes(cls, *attributes: str, n_lookups: int = 1, name: str = "") -> "TrainingQuery":
        """A query known only by the attributes it predicates."""
        constraints = {attribute: ValueConstraint() for attribute in attributes}
        return cls(constraints=constraints, n_lookups=n_lookups, name=name)


@dataclass(frozen=True)
class CMDesign:
    """One candidate CM design with its estimated properties."""

    key_spec: CompositeKeySpec
    bucket_levels: tuple[tuple[str, int], ...]
    estimated_c_per_u: float
    estimated_distinct_keys: float
    estimated_size_bytes: float
    estimated_cost_ms: float
    baseline_cost_ms: float
    baseline_size_bytes: float

    @property
    def slowdown(self) -> float:
        """Estimated relative slowdown vs the secondary B+Tree (0.03 = +3 %)."""
        if self.baseline_cost_ms <= 0:
            return 0.0
        return (self.estimated_cost_ms - self.baseline_cost_ms) / self.baseline_cost_ms

    @property
    def size_ratio(self) -> float:
        """Estimated CM size as a fraction of the secondary B+Tree size."""
        if self.baseline_size_bytes <= 0:
            return 1.0
        return self.estimated_size_bytes / self.baseline_size_bytes

    def describe(self) -> str:
        parts = []
        for attribute, level in self.bucket_levels:
            parts.append(attribute if level == 0 else f"{attribute}(2^{level})")
        return ", ".join(parts)


@dataclass(frozen=True)
class Recommendation:
    """The advisor's output for one training query (one row of Table 5+)."""

    query: TrainingQuery
    designs: tuple[CMDesign, ...]
    recommended: CMDesign | None
    scan_cost_ms: float

    def designs_by_slowdown(self) -> list[CMDesign]:
        return sorted(self.designs, key=lambda d: (d.slowdown, d.estimated_size_bytes))


class CMAdvisor:
    """Recommends correlation maps (and bucketings) for a training workload."""

    def __init__(
        self,
        rows: Sequence[Mapping[str, Any]],
        clustered_attribute: str,
        *,
        table_profile: TableProfile | None = None,
        hardware: HardwareParameters | None = None,
        tups_per_page: int = 100,
        sample_size: int = 30_000,
        seed: int = 0,
        max_attributes_per_cm: int = 4,
        max_candidates_per_query: int = 2048,
        performance_target: float = 0.10,
        min_selectivity: float = 0.5,
        clustered_bucket_pages: int = 10,
    ) -> None:
        if not rows:
            raise ValueError("the advisor needs a non-empty table")
        self.rows = rows
        self.clustered_attribute = clustered_attribute
        self.hardware = hardware or HardwareParameters()
        self.table_profile = table_profile or TableProfile(
            total_tups=len(rows), tups_per_page=tups_per_page
        )
        self.sample_size = sample_size
        self.seed = seed
        self.max_attributes_per_cm = max_attributes_per_cm
        self.max_candidates_per_query = max_candidates_per_query
        self.performance_target = performance_target
        self.min_selectivity = min_selectivity
        #: Recommended clustered-attribute bucket width, in heap pages.  The
        #: paper finds ~10 pages per bucket loses only ~1 ms per query
        #: (Table 3) while keeping the CM small.
        self.clustered_bucket_pages = clustered_bucket_pages

        self._collector = StatisticsCollector(rows)
        self._sample = self._collector.collect_sample(
            sample_size=sample_size, seed=seed
        )
        self._clustered_spec = self._build_clustered_spec()

    def _build_clustered_spec(self) -> CompositeKeySpec:
        """The clustered side of every candidate CM, bucketed as the engine
        would bucket it (Section 6.1.1).

        CM entries map to clustered *buckets* of roughly
        ``clustered_bucket_pages`` heap pages, not to raw clustered values;
        estimating sizes against raw values would wildly overstate CM sizes
        whenever the clustered attribute is many-valued (e.g. a unique key).
        Numeric clustered attributes are approximated with a fixed-width
        bucketing of the right bucket count; non-numeric ones fall back to
        value granularity.
        """
        values = [row[self.clustered_attribute] for row in self._sample]
        numeric = values and all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in values
        )
        if not numeric:
            return CompositeKeySpec.build([self.clustered_attribute])
        rows_per_bucket = max(1, self.clustered_bucket_pages * self.table_profile.tups_per_page)
        num_buckets = max(1, self.table_profile.total_tups // rows_per_bucket)
        low, high = min(values), max(values)
        span = float(high) - float(low)
        if span <= 0 or num_buckets <= 1:
            return CompositeKeySpec.build([self.clustered_attribute])
        from repro.core.bucketing import WidthBucketer

        width = span / num_buckets
        return CompositeKeySpec.build(
            [self.clustered_attribute],
            {self.clustered_attribute: WidthBucketer(width, origin=float(low))},
        )

    # -- bucketing enumeration (Table 4) -----------------------------------------

    def bucketing_candidates(self, attribute: str) -> list[BucketingOption]:
        """The bucketings considered for one attribute (Table 4 rows)."""
        values = [row[attribute] for row in self._sample]
        return candidate_bucketings(attribute, values)

    def bucketing_report(self, attributes: Sequence[str]) -> list[dict[str, Any]]:
        """Rows of Table 4: attribute, cardinality, considered bucket widths."""
        report = []
        for attribute in attributes:
            options = self.bucketing_candidates(attribute)
            cardinality = len({row[attribute] for row in self.rows})
            levels = [option.level for option in options if option.level > 0]
            report.append(
                {
                    "column": attribute,
                    "cardinality": cardinality,
                    "bucket_levels": levels,
                    "bucket_widths": (
                        "none"
                        if not levels
                        else f"none ~ 2^{max(levels)}"
                        if 0 in [option.level for option in options]
                        else f"2^{min(levels)} ~ 2^{max(levels)}"
                    ),
                }
            )
        return report

    # -- candidate enumeration -----------------------------------------------------

    def enumerate_candidates(self, query: TrainingQuery) -> list[CompositeKeySpec]:
        """All candidate CM key specs for one query (Section 6.1.3)."""
        attributes = self._eligible_attributes(query)
        per_attribute_options = {
            attribute: self.bucketing_candidates(attribute) for attribute in attributes
        }
        candidates: list[CompositeKeySpec] = []
        for size in range(1, min(len(attributes), self.max_attributes_per_cm) + 1):
            for subset in itertools.combinations(attributes, size):
                option_lists = [per_attribute_options[attribute] for attribute in subset]
                for combination in itertools.product(*option_lists):
                    spec = CompositeKeySpec.build(
                        subset,
                        {option.attribute: option.bucketer for option in combination},
                    )
                    candidates.append(spec)
                    if len(candidates) >= self.max_candidates_per_query:
                        return candidates
        return candidates

    def _eligible_attributes(self, query: TrainingQuery) -> tuple[str, ...]:
        """Predicated attributes, excluding the clustered attribute itself and
        predicates less selective than the configured threshold."""
        eligible = []
        for attribute in query.attributes:
            if attribute == self.clustered_attribute:
                continue
            if self._estimated_selectivity(attribute, query) > self.min_selectivity:
                continue
            eligible.append(attribute)
        return tuple(eligible)

    def _estimated_selectivity(self, attribute: str, query: TrainingQuery) -> float:
        """Fraction of rows an equality predicate on ``attribute`` selects."""
        distinct = len({row[attribute] for row in self._sample}) or 1
        constraint = query.constraints.get(attribute)
        values = 1
        if constraint is not None and constraint.values is not None:
            values = max(1, len(constraint.values))
        return min(1.0, values / distinct)

    # -- evaluation of one candidate ---------------------------------------------------

    def evaluate_design(
        self, key_spec: CompositeKeySpec, *, n_lookups: int = 1
    ) -> CMDesign:
        """Estimate c_per_u, size and cost for one candidate CM design."""
        profile = self._collector.estimated_correlation_profile(
            key_spec,
            self._clustered_spec,
            self._sample,
            total_rows=self.table_profile.total_tups,
        )
        distinct_keys = max(
            1.0,
            self.table_profile.total_tups / max(profile.u_tups, 1e-9)
            if profile.u_tups
            else 1.0,
        )
        entries = distinct_keys * max(profile.c_per_u, 1.0)
        key_bytes = 8 * len(key_spec)
        size_bytes = distinct_keys * (key_bytes + _CM_KEY_OVERHEAD_BYTES) + entries * _CM_TARGET_BYTES

        pages_per_bucket = max(
            float(self.clustered_bucket_pages),
            profile.c_pages(self.table_profile.tups_per_page),
        )
        cm_inputs = CMCostInputs(
            buckets_per_lookup=max(profile.c_per_u, 1.0),
            pages_per_bucket=pages_per_bucket,
            cm_pages=size_bytes / 8192,
            cm_resident=True,
        )
        cost = cm_lookup_cost(n_lookups, cm_inputs, self.table_profile, self.hardware)

        baseline_profile, baseline_size = self._baseline(key_spec)
        baseline_cost = sorted_lookup_cost(
            n_lookups, baseline_profile, self.table_profile, self.hardware
        )
        bucket_levels = tuple(
            (part.attribute, self._level_of(part)) for part in key_spec.parts
        )
        return CMDesign(
            key_spec=key_spec,
            bucket_levels=bucket_levels,
            estimated_c_per_u=profile.c_per_u,
            estimated_distinct_keys=distinct_keys,
            estimated_size_bytes=size_bytes,
            estimated_cost_ms=cost,
            baseline_cost_ms=baseline_cost,
            baseline_size_bytes=baseline_size,
        )

    def _baseline(self, key_spec: CompositeKeySpec) -> tuple[CorrelationProfile, float]:
        """The secondary B+Tree baseline: unbucketed key, dense entries."""
        unbucketed = CompositeKeySpec.build(key_spec.attributes)
        profile = self._collector.estimated_correlation_profile(
            unbucketed,
            self.clustered_attribute,
            self._sample,
            total_rows=self.table_profile.total_tups,
        )
        key_bytes = 8 * len(key_spec)
        size = self.table_profile.total_tups * (key_bytes + _BTREE_ENTRY_OVERHEAD_BYTES)
        return profile, float(size)

    @staticmethod
    def _level_of(part: AttributeBucketing) -> int:
        bucketer = part.bucketer
        level = getattr(bucketer, "level", None)
        if level is not None:
            return level
        width = getattr(bucketer, "width", None)
        if width is None:
            return 0
        # Recover the level from the width heuristically (width = 2**level * gap).
        return max(1, int(round(width).bit_length() - 1)) if width >= 1 else 1

    # -- recommendation (Section 6.2) ------------------------------------------------------

    def recommend(self, query: TrainingQuery) -> Recommendation:
        """Evaluate all candidates for one query and pick a recommendation.

        The recommended design is the *smallest* one whose estimated slowdown
        relative to the secondary B+Tree stays within ``performance_target``.
        When even the best design is not expected to beat a sequential scan,
        no CM is recommended.
        """
        candidates = self.enumerate_candidates(query)
        designs = [
            self.evaluate_design(spec, n_lookups=query.n_lookups) for spec in candidates
        ]
        table_scan = scan_cost(self.table_profile, self.hardware)
        recommended: CMDesign | None = None
        # Only designs that are both within the performance target *and*
        # expected to beat a sequential scan are worth building; among those,
        # recommend the smallest.  (A design over a weakly-correlated or
        # few-valued attribute can have "zero slowdown" simply because both it
        # and the B+Tree degenerate to a scan -- it must not be recommended.)
        useful = [
            design
            for design in designs
            if design.slowdown <= self.performance_target
            and design.estimated_cost_ms < table_scan
        ]
        if useful:
            recommended = min(useful, key=lambda d: d.estimated_size_bytes)
        return Recommendation(
            query=query,
            designs=tuple(designs),
            recommended=recommended,
            scan_cost_ms=table_scan,
        )

    def recommend_workload(
        self, queries: Sequence[TrainingQuery]
    ) -> list[Recommendation]:
        """Recommendations for every query of a training workload."""
        return [self.recommend(query) for query in queries]

    # -- Table 5 style report -----------------------------------------------------------------

    def design_table(self, query: TrainingQuery, *, limit: int = 10) -> list[dict[str, Any]]:
        """Rows of Table 5: designs sorted by estimated slowdown vs B+Tree."""
        recommendation = self.recommend(query)
        rows = []
        for design in recommendation.designs_by_slowdown()[:limit]:
            rows.append(
                {
                    "runtime": f"+{design.slowdown:.0%}" if design.slowdown > 0 else "0%",
                    "cm_design": design.describe(),
                    "size_ratio": f"{design.size_ratio:.1%}",
                    "estimated_size_bytes": design.estimated_size_bytes,
                    "estimated_c_per_u": design.estimated_c_per_u,
                }
            )
        return rows
