"""Choosing a clustered attribute that benefits many queries (Figure 2).

The paper's Section 3.4 experiment clusters the SDSS ``PhotoObj`` table on
each of 39 attributes in turn and counts, for every clustering, how many of
39 single-attribute selection queries speed up by at least 2x/4x/8x/16x over
a table scan.  The clustering advisor performs the analytical version of that
experiment: using the correlation-aware cost model, it predicts the speedup
of every (query attribute, clustered attribute) combination and summarises
which clustered attributes help the most queries.

This is also the analysis a physical designer (the paper's future work)
would build on when choosing a clustered index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.core.cost import scan_cost, sorted_lookup_cost
from repro.core.model import HardwareParameters, TableProfile
from repro.core.statistics import StatisticsCollector

#: The speedup thresholds reported in Figure 2.
SPEEDUP_THRESHOLDS = (2.0, 4.0, 8.0, 16.0)


@dataclass(frozen=True)
class QuerySpeedup:
    """Predicted speedup of one query attribute under one clustering."""

    query_attribute: str
    clustered_attribute: str
    c_per_u: float
    lookup_cost_ms: float
    scan_cost_ms: float

    @property
    def speedup(self) -> float:
        if self.lookup_cost_ms <= 0:
            return float("inf")
        return self.scan_cost_ms / self.lookup_cost_ms


@dataclass(frozen=True)
class ClusteringBenefit:
    """Figure 2 summary for one choice of clustered attribute."""

    clustered_attribute: str
    speedups: tuple[QuerySpeedup, ...]

    def queries_with_speedup(self, threshold: float) -> int:
        return sum(1 for s in self.speedups if s.speedup >= threshold)

    def histogram(
        self, thresholds: Sequence[float] = SPEEDUP_THRESHOLDS
    ) -> dict[float, int]:
        return {t: self.queries_with_speedup(t) for t in thresholds}


class ClusteringAdvisor:
    """Predicts which clustered attribute accelerates the most queries."""

    def __init__(
        self,
        rows: Sequence[Mapping[str, Any]],
        *,
        table_profile: TableProfile | None = None,
        hardware: HardwareParameters | None = None,
        tups_per_page: int = 100,
        n_lookups: int = 1,
    ) -> None:
        if not rows:
            raise ValueError("the clustering advisor needs a non-empty table")
        self.rows = rows
        self.hardware = hardware or HardwareParameters()
        self.table_profile = table_profile or TableProfile(
            total_tups=len(rows), tups_per_page=tups_per_page
        )
        self.n_lookups = n_lookups
        self._collector = StatisticsCollector(rows)

    def evaluate_clustering(
        self, clustered_attribute: str, query_attributes: Sequence[str]
    ) -> ClusteringBenefit:
        """Predict every query's speedup under one choice of clustering."""
        scan = scan_cost(self.table_profile, self.hardware)
        speedups = []
        for attribute in query_attributes:
            if attribute == clustered_attribute:
                # A query on the clustered attribute itself: a clustered-index
                # range read, modelled as c_per_u = 1.
                profile = self._collector.correlation_profile(attribute, attribute)
                profile = type(profile)(
                    c_per_u=1.0, c_tups=profile.c_tups, u_tups=profile.u_tups
                )
            else:
                profile = self._collector.correlation_profile(
                    attribute, clustered_attribute
                )
            cost = sorted_lookup_cost(
                self.n_lookups, profile, self.table_profile, self.hardware
            )
            speedups.append(
                QuerySpeedup(
                    query_attribute=attribute,
                    clustered_attribute=clustered_attribute,
                    c_per_u=profile.c_per_u,
                    lookup_cost_ms=cost,
                    scan_cost_ms=scan,
                )
            )
        return ClusteringBenefit(
            clustered_attribute=clustered_attribute, speedups=tuple(speedups)
        )

    def evaluate_all(
        self,
        clustered_candidates: Sequence[str],
        query_attributes: Sequence[str] | None = None,
    ) -> list[ClusteringBenefit]:
        """Figure 2: one :class:`ClusteringBenefit` per candidate clustering."""
        query_attributes = list(query_attributes or clustered_candidates)
        return [
            self.evaluate_clustering(candidate, query_attributes)
            for candidate in clustered_candidates
        ]

    def best_clustering(
        self,
        clustered_candidates: Sequence[str],
        query_attributes: Sequence[str] | None = None,
        *,
        threshold: float = 2.0,
    ) -> ClusteringBenefit:
        """The clustering that accelerates the most queries by ``threshold``x."""
        benefits = self.evaluate_all(clustered_candidates, query_attributes)
        return max(benefits, key=lambda b: b.queries_with_speedup(threshold))

    # -- layout simulation (how Figure 2 is actually measured) -------------------

    def simulate_workload(
        self,
        clustered_candidates: Sequence[str],
        query_predicates: Mapping[str, Callable[[Mapping[str, Any]], bool]],
        *,
        btree_height: int | None = None,
    ) -> list[ClusteringBenefit]:
        """Layout-simulate every (clustering, query) combination efficiently.

        Query matches are evaluated once; each candidate clustering then only
        re-maps the matching rows onto its physical layout.  This is how the
        Figure 2 benchmark sweeps 39 clusterings x 39 queries in seconds.
        """
        matches = {
            attribute: [i for i, row in enumerate(self.rows) if predicate(row)]
            for attribute, predicate in query_predicates.items()
        }
        return [
            self._simulate_with_matches(candidate, matches, btree_height=btree_height)
            for candidate in clustered_candidates
        ]

    def simulate_clustering(
        self,
        clustered_attribute: str,
        query_predicates: Mapping[str, Callable[[Mapping[str, Any]], bool]],
        *,
        btree_height: int | None = None,
    ) -> ClusteringBenefit:
        """Measure (rather than model) each query's cost under one clustering.

        The rows are laid out in ``clustered_attribute`` order; for every
        query the heap pages holding matching tuples are computed directly,
        and the cost of a sorted (bitmap) index scan over that page set --
        one seek per contiguous page run plus a sequential read per page,
        plus one secondary-index range descent -- is charged with the
        hardware constants.  This mirrors how the paper measures Figure 2
        while avoiding a physical rebuild per clustering.
        """
        matches = {
            attribute: [i for i, row in enumerate(self.rows) if predicate(row)]
            for attribute, predicate in query_predicates.items()
        }
        return self._simulate_with_matches(
            clustered_attribute, matches, btree_height=btree_height
        )

    def _simulate_with_matches(
        self,
        clustered_attribute: str,
        matches: Mapping[str, Sequence[int]],
        *,
        btree_height: int | None = None,
    ) -> ClusteringBenefit:
        order = sorted(range(len(self.rows)), key=lambda i: self.rows[i][clustered_attribute])
        position_of = {row_index: position for position, row_index in enumerate(order)}
        tups_per_page = self.table_profile.tups_per_page
        height = btree_height or self.table_profile.btree_height
        scan = scan_cost(self.table_profile, self.hardware)
        speedups = []
        for attribute, matching in matches.items():
            pages = sorted({position_of[i] // tups_per_page for i in matching})
            runs = 1 + sum(
                1 for a, b in zip(pages, pages[1:]) if b != a + 1
            ) if pages else 0
            # One secondary-index range descent plus the leaf pages scanned to
            # collect the matching RIDs (a range predicate needs no per-value
            # descents), then the bitmap sweep of the heap pages.
            leaf_pages = max(1, len(matching) // 256)
            index_cost = (
                self.hardware.seek_cost_ms * height
                + leaf_pages * self.hardware.seq_page_cost_ms
            )
            cost = (
                index_cost
                + runs * self.hardware.seek_cost_ms
                + len(pages) * self.hardware.seq_page_cost_ms
            )
            cost = min(cost, scan) if pages else 0.0
            speedups.append(
                QuerySpeedup(
                    query_attribute=attribute,
                    clustered_attribute=clustered_attribute,
                    c_per_u=float(runs),
                    lookup_cost_ms=cost,
                    scan_cost_ms=scan,
                )
            )
        return ClusteringBenefit(
            clustered_attribute=clustered_attribute, speedups=tuple(speedups)
        )
