"""The correlation-aware analytical cost model (Sections 3 and 4).

The model predicts the cost, in milliseconds of simulated disk time, of the
three access methods the paper considers:

* a full sequential table scan (:func:`scan_cost`);
* a pipelined secondary index scan, which pays one random seek per tuple
  visited (:func:`pipelined_lookup_cost`);
* a sorted (bitmap) secondary index scan in the presence of correlations
  (:func:`sorted_lookup_cost`), the paper's central formula::

      c_pages    = c_tups / tups_per_page
      cost       = min(n_lookups * c_per_u *
                         (seek_cost * btree_height + seq_page_cost * c_pages),
                       cost_scan)

* a correlation-map lookup (:func:`cm_lookup_cost`), which is the sorted-scan
  formula evaluated with the CM's bucket-level statistics plus the cost of
  reading the (small, usually memory-resident) CM itself.

Two extensions grow the model beyond single-table selections:

* :class:`CostSplit` decomposes each formula into an upfront part (index
  descents paid before the first row) and a streaming part (the page sweep a
  LIMIT terminates early), which is what makes plan selection LIMIT-aware
  (:func:`limited_cost`);
* :func:`nested_loop_join_cost` / :func:`index_nested_loop_join_cost` price
  pipelined joins as ``cost_outer + outer_rows * cost_per_inner_visit``,
  with the per-visit term taken from whichever single-lookup formula matches
  the inner access structure;
* :func:`hash_join_cost` / :func:`sort_merge_join_cost` price the streaming
  set-at-a-time operators directly as :class:`CostSplit`\\ s: the hash-table
  build and the explicit sorts are upfront work paid before the first row,
  while the probe pass and the ordered merge sweep stream (and so scale
  under a LIMIT, exactly like a single-table page sweep).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.model import CorrelationProfile, HardwareParameters, TableProfile


def scan_cost(profile: TableProfile, hw: HardwareParameters) -> float:
    """Cost of a full sequential scan: ``seq_page_cost * p`` (Section 3)."""
    return profile.num_pages * hw.seq_page_cost_ms


def pipelined_lookup_cost(
    n_lookups: int,
    correlation: CorrelationProfile,
    profile: TableProfile,
    hw: HardwareParameters,
) -> float:
    """Cost of a pipelined (unsorted) secondary B+Tree scan (Section 3.1).

    Each of the ``n_lookups * u_tups`` matching tuples is fetched with a
    separate descent of ``btree_height`` random seeks::

        cost = n_lookups * u_tups * seek_cost * btree_height
    """
    if n_lookups < 0:
        raise ValueError("n_lookups must be non-negative")
    return (
        n_lookups
        * correlation.u_tups
        * hw.seek_cost_ms
        * profile.btree_height
    )


def sorted_lookup_cost(
    n_lookups: int,
    correlation: CorrelationProfile,
    profile: TableProfile,
    hw: HardwareParameters,
    *,
    clamp_to_scan: bool = True,
) -> float:
    """Cost of a sorted (bitmap) secondary index scan with correlations.

    This is the paper's Section 4.1 formula.  For each of the ``n_lookups``
    unclustered values the scan visits ``c_per_u`` clustered values; each
    visit costs one clustered-index descent (``btree_height`` seeks) plus a
    sequential read of the ``c_pages`` heap pages holding that clustered
    value.  The access pattern degenerates into a full scan once it touches a
    large fraction of the table, so the result is clamped by ``cost_scan``.
    """
    if n_lookups < 0:
        raise ValueError("n_lookups must be non-negative")
    c_pages = correlation.c_pages(profile.tups_per_page)
    per_value_cost = (
        hw.seek_cost_ms * profile.btree_height + hw.seq_page_cost_ms * c_pages
    )
    cost = n_lookups * correlation.c_per_u * per_value_cost
    if clamp_to_scan:
        return min(cost, scan_cost(profile, hw))
    return cost


@dataclass(frozen=True)
class CMCostInputs:
    """Bucket-level statistics describing a correlation-map lookup.

    ``buckets_per_lookup``
        Average number of *clustered buckets* (or clustered values when the
        clustered side is unbucketed) returned by the CM per predicated
        value -- the bucket-level analogue of ``c_per_u``.
    ``pages_per_bucket``
        Average number of contiguous heap pages covered by one clustered
        bucket -- the bucket-level analogue of ``c_pages``.
    ``cm_pages``
        Size of the CM itself in pages.  CMs normally stay cached, but a
        cold lookup must read them; keeping the term makes the size/
        performance trade-off of Figure 7 visible to the model.
    ``cm_resident``
        Whether the CM is assumed to be cached in RAM (the common case).
    """

    buckets_per_lookup: float
    pages_per_bucket: float
    cm_pages: float = 1.0
    cm_resident: bool = True


def cm_lookup_cost(
    n_lookups: int,
    inputs: CMCostInputs,
    profile: TableProfile,
    hw: HardwareParameters,
    *,
    clamp_to_scan: bool = True,
) -> float:
    """Cost of answering ``n_lookups`` predicated values through a CM.

    The structure of the formula is identical to :func:`sorted_lookup_cost`,
    with value-level statistics replaced by bucket-level statistics: for each
    predicated value the executor visits ``buckets_per_lookup`` clustered
    buckets, paying a clustered-index descent plus a sequential sweep of the
    bucket's pages.  Reading the CM itself costs one sequential pass over its
    pages when it is not memory resident.
    """
    if n_lookups < 0:
        raise ValueError("n_lookups must be non-negative")
    per_bucket_cost = (
        hw.seek_cost_ms * profile.btree_height
        + hw.seq_page_cost_ms * inputs.pages_per_bucket
    )
    cost = n_lookups * inputs.buckets_per_lookup * per_bucket_cost
    if not inputs.cm_resident:
        cost += hw.seek_cost_ms + hw.seq_page_cost_ms * inputs.cm_pages
    if clamp_to_scan:
        return min(cost, scan_cost(profile, hw))
    return cost


def speedup_over_scan(
    lookup_cost: float, profile: TableProfile, hw: HardwareParameters
) -> float:
    """How many times faster than a table scan a lookup is (>= 1 is a win)."""
    if lookup_cost <= 0:
        return float("inf")
    return scan_cost(profile, hw) / lookup_cost


# ---------------------------------------------------------------------------
# LIMIT-aware costing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CostSplit:
    """One access path's cost decomposed for LIMIT-aware selection.

    ``upfront_ms`` is paid before the first row can be emitted (index probes,
    clustered-index descents, a non-resident CM read); ``streaming_ms`` is
    the page sweep that produces rows, which a satisfied LIMIT terminates
    early.  The split is what makes LIMIT-aware costing meaningful: every
    candidate produces the *same* matching rows, so a plan-independent
    fraction scales only the streaming part, and a plan with a heavy upfront
    component (many B+Tree descents) loses to a plain scan when the caller
    only wants a handful of rows.
    """

    upfront_ms: float
    streaming_ms: float

    @property
    def total_ms(self) -> float:
        return self.upfront_ms + self.streaming_ms


def limited_cost(split: CostSplit, est_result_rows: float, limit: int | None) -> float:
    """Expected cost of producing ``min(limit, est_result_rows)`` rows.

    Matching rows are assumed uniformly spread over the pages the streaming
    part sweeps, so a LIMIT of ``k`` out of an estimated ``m`` result rows
    sweeps a ``k/m`` fraction of them.  With no limit, or when fewer rows
    match than the limit asks for, the full split cost is returned.  An
    estimate of zero matching rows also returns the full cost: a LIMIT that
    can never be satisfied terminates nothing.
    """
    if limit is None or est_result_rows < 1.0:
        return split.total_ms
    fraction = min(1.0, limit / est_result_rows)
    return split.upfront_ms + split.streaming_ms * fraction


def sorted_lookup_cost_split(
    n_lookups: int,
    correlation: CorrelationProfile,
    profile: TableProfile,
    hw: HardwareParameters,
) -> CostSplit:
    """:func:`sorted_lookup_cost` decomposed into upfront descents + sweep.

    The descents (``n * c_per_u`` clustered-index walks) are the upfront
    part; the sequential reads of the matching heap pages are the streaming
    part, clamped by the full-scan cost exactly as the combined formula is
    (the access pattern degenerating into a scan is a property of the sweep,
    not of the descents).
    """
    if n_lookups < 0:
        raise ValueError("n_lookups must be non-negative")
    c_pages = correlation.c_pages(profile.tups_per_page)
    visits = n_lookups * correlation.c_per_u
    return CostSplit(
        upfront_ms=visits * hw.seek_cost_ms * profile.btree_height,
        streaming_ms=min(
            visits * hw.seq_page_cost_ms * c_pages, scan_cost(profile, hw)
        ),
    )


def cm_lookup_cost_split(
    n_lookups: int,
    inputs: CMCostInputs,
    profile: TableProfile,
    hw: HardwareParameters,
) -> CostSplit:
    """:func:`cm_lookup_cost` decomposed into upfront descents + sweep."""
    if n_lookups < 0:
        raise ValueError("n_lookups must be non-negative")
    visits = n_lookups * inputs.buckets_per_lookup
    upfront = visits * hw.seek_cost_ms * profile.btree_height
    if not inputs.cm_resident:
        upfront += hw.seek_cost_ms + hw.seq_page_cost_ms * inputs.cm_pages
    return CostSplit(
        upfront_ms=upfront,
        streaming_ms=min(
            visits * hw.seq_page_cost_ms * inputs.pages_per_bucket,
            scan_cost(profile, hw),
        ),
    )


# ---------------------------------------------------------------------------
# Join costing (pipelined nested loops)
# ---------------------------------------------------------------------------

def nested_loop_join_cost(
    outer_cost_ms: float, est_outer_rows: float, inner_profile: TableProfile,
    hw: HardwareParameters,
) -> float:
    """Cost of a naive nested-loop join: one full inner scan per outer row::

        cost = cost_outer + outer_rows * cost_scan(inner)

    The buffer pool will usually keep a small inner table resident across
    rescans, so this over-estimates warm-cache runs; the planner only needs
    the estimate to be monotone in the rescan count, which it is.
    """
    return outer_cost_ms + max(0.0, est_outer_rows) * scan_cost(inner_profile, hw)


def index_nested_loop_join_cost(
    outer_cost_ms: float, est_outer_rows: float, per_probe_cost_ms: float
) -> float:
    """Cost of an index-nested-loop join: one inner probe per outer row::

        cost = cost_outer + outer_rows * cost_probe(inner)

    ``per_probe_cost_ms`` is the single-lookup (``n_lookups = 1``) cost of
    whichever inner structure the probe uses: :func:`sorted_lookup_cost` for
    a clustered or secondary B+Tree, :func:`cm_lookup_cost` for a
    correlation map.  The CM term is where the paper's trick pays off across
    tables: a join key correlated with the inner clustered key gives a small
    ``buckets_per_lookup``, so each probe sweeps a couple of contiguous
    buckets instead of descending a fat secondary B+Tree.
    """
    return outer_cost_ms + max(0.0, est_outer_rows) * per_probe_cost_ms


def sort_comparison_count(rows: float) -> float:
    """The ``n log2 n`` comparison count of an in-memory sort of ``rows``.

    Shared between the cost model (:func:`sort_merge_join_cost`, in ms) and
    the executor (which charges the same count as CPU tuples to the disk
    simulator), so the measured and modelled sort cost cannot drift apart.
    """
    rows = max(0.0, rows)
    if rows < 2.0:
        return 0.0
    return rows * math.log2(rows)


def _sort_cpu_ms(rows: float, hw: HardwareParameters) -> float:
    """CPU cost of an in-memory comparison sort of ``rows`` rows."""
    return sort_comparison_count(rows) * hw.cpu_tuple_cost_ms


def hash_join_cost(
    est_outer_rows: float,
    est_inner_rows: float,
    inner_profile: TableProfile,
    hw: HardwareParameters,
    *,
    build_side: str = "inner",
) -> CostSplit:
    """Cost of one streaming hash-join step, decomposed for LIMIT awareness.

    ``inner_profile`` describes the joined table, which is read exactly once
    either way; the outer input's own cost is charged by whoever produced
    the outer stream.  The build side is hashed row by row *upfront*, before
    the first merged row can be emitted; the probe side then streams through
    the memory-resident hash table at pure CPU cost per row, so the
    streaming part scales under a LIMIT::

        build_side="inner":  upfront   = cost_scan(inner) + inner_rows * cpu
                             streaming = outer_rows * cpu
        build_side="outer":  upfront   = outer_rows * cpu
                             streaming = cost_scan(inner) + inner_rows * cpu

    Building the sampled-smaller input is what "build the cheaper side"
    means; either shape reads O(N + M) pages total -- the whole point versus
    the quadratic nested-loop rescan.
    """
    if est_outer_rows < 0 or est_inner_rows < 0:
        raise ValueError("row estimates must be non-negative")
    if build_side not in ("inner", "outer"):
        raise ValueError(f"unknown build side {build_side!r}")
    inner_ms = scan_cost(inner_profile, hw) + est_inner_rows * hw.cpu_tuple_cost_ms
    outer_ms = est_outer_rows * hw.cpu_tuple_cost_ms
    if build_side == "inner":
        return CostSplit(upfront_ms=inner_ms, streaming_ms=outer_ms)
    return CostSplit(upfront_ms=outer_ms, streaming_ms=inner_ms)


# ---------------------------------------------------------------------------
# Streaming operator costing (Sort / TopK / Aggregate / GroupBy nodes)
# ---------------------------------------------------------------------------

def sort_cost(est_rows: float, hw: HardwareParameters) -> CostSplit:
    """Cost of an explicit in-memory ORDER BY sort over ``est_rows`` rows.

    The sort must drain its whole input before the first row can be emitted,
    so the ``n log n`` comparison CPU is upfront; re-emitting the sorted rows
    is the streaming part (which a LIMIT *above* the sort can cut short,
    although a plain LIMIT + ORDER BY plans a :func:`top_k_cost` node
    instead).
    """
    return CostSplit(
        upfront_ms=_sort_cpu_ms(est_rows, hw),
        streaming_ms=max(0.0, est_rows) * hw.cpu_tuple_cost_ms,
    )


def top_k_comparison_count(rows: float, k: int) -> float:
    """Comparisons of a bounded-heap top-k selection: ``n log2 k``.

    Shared by the cost model (in ms) and the executor (charged as CPU tuples)
    so the modelled and measured heap cost cannot drift apart.
    """
    rows = max(0.0, rows)
    return rows * math.log2(max(2, k))


def top_k_cost(est_rows: float, k: int, hw: HardwareParameters) -> CostSplit:
    """Cost of a heap-based top-k (ORDER BY + LIMIT k) over ``est_rows`` rows.

    The k-heap consumes the entire input before anything can be emitted
    (upfront: one heap operation per input row, ``log2 k`` comparisons each);
    emitting the k survivors streams.  Because only a k-row heap is retained,
    this beats :func:`sort_cost` whenever ``k`` is small -- the reason the
    planner fuses ORDER BY + LIMIT into one TopK node.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    return CostSplit(
        upfront_ms=top_k_comparison_count(est_rows, k) * hw.cpu_tuple_cost_ms,
        streaming_ms=min(max(0.0, est_rows), float(k)) * hw.cpu_tuple_cost_ms,
    )


def scalar_aggregate_cost(est_rows: float, hw: HardwareParameters) -> CostSplit:
    """Cost of reducing ``est_rows`` rows to one aggregate value (streaming).

    One CPU charge per consumed row, all upfront: nothing is emitted until
    the input is exhausted, so no part of the work scales with a LIMIT.
    """
    return CostSplit(
        upfront_ms=max(0.0, est_rows) * hw.cpu_tuple_cost_ms, streaming_ms=0.0
    )


def hash_group_cost(
    est_rows: float, est_groups: float, hw: HardwareParameters
) -> CostSplit:
    """Cost of hash aggregation: one hash+accumulate per row, emit per group.

    The build over the input is upfront (the last input row can still create
    a new group, so no group is final before the input is exhausted); emitting
    the grouped rows streams and scales under a LIMIT.
    """
    return CostSplit(
        upfront_ms=max(0.0, est_rows) * hw.cpu_tuple_cost_ms,
        streaming_ms=max(0.0, est_groups) * hw.cpu_tuple_cost_ms,
    )


def sort_merge_join_cost(
    est_outer_rows: float,
    est_inner_rows: float,
    inner_profile: TableProfile,
    hw: HardwareParameters,
    *,
    inner_sorted: bool,
    outer_sorted: bool = False,
) -> CostSplit:
    """Cost of one sort-merge join step, decomposed for LIMIT awareness.

    Any input not already ordered by the join key is materialised and sorted
    upfront (CPU ``n log n``; the inner additionally pays its scan, since an
    explicit sort must read every inner page before the first merged row).
    When the inner *is* pre-sorted -- its clustered attribute is the join
    key -- the merge sweeps its heap pages in order as part of the streaming
    phase, so a satisfied LIMIT abandons the sweep with the remaining inner
    pages unread::

        upfront   = sort(outer)? + (cost_scan(inner) + sort(inner))?
        streaming = cost_scan(inner) if inner_sorted else merge CPU

    As with :func:`hash_join_cost` the outer input's own cost is charged by
    whoever produced the outer stream.
    """
    if est_outer_rows < 0 or est_inner_rows < 0:
        raise ValueError("row estimates must be non-negative")
    upfront = 0.0 if outer_sorted else _sort_cpu_ms(est_outer_rows, hw)
    if inner_sorted:
        streaming = scan_cost(inner_profile, hw)
    else:
        upfront += scan_cost(inner_profile, hw) + _sort_cpu_ms(est_inner_rows, hw)
        streaming = 0.0
    # The merge itself: one CPU charge per row of either input.
    streaming += (est_outer_rows + est_inner_rows) * hw.cpu_tuple_cost_ms
    return CostSplit(upfront_ms=upfront, streaming_ms=streaming)


# ---------------------------------------------------------------------------
# Partition-wise costing (exchange-level shapes)
# ---------------------------------------------------------------------------

def merge_comparison_count(rows: float, streams: int) -> float:
    """Comparisons of a ``streams``-way heap merge: ``n log2 k``.

    Shared between the cost model (:func:`merge_exchange_cost`, in ms) and
    the executor (which charges the same count as CPU tuples when the merge
    exchange emits), so the modelled and measured merge cost cannot drift.
    """
    rows = max(0.0, rows)
    return rows * math.log2(max(2, streams))


def merge_exchange_cost(
    est_rows: float, streams: int, hw: HardwareParameters
) -> CostSplit:
    """Cost of k-way merging per-partition ordered streams into one.

    The per-partition sorts/top-ks beneath the merge carry their own splits;
    the merge itself is one ``log2 k`` heap operation per emitted row, all
    streaming -- a LIMIT above stops the merge after ``k`` pops, which is
    exactly what makes per-partition top-k + merge beat sorting the
    concatenation.
    """
    return CostSplit(
        upfront_ms=0.0,
        streaming_ms=merge_comparison_count(est_rows, streams)
        * hw.cpu_tuple_cost_ms,
    )


def broadcast_cost(
    inner_scan_ms: float,
    est_inner_rows: float,
    n_partitions: int,
    hw: HardwareParameters,
) -> CostSplit:
    """Cost of replicating a small flat input to every partition subtree.

    The inner is scanned exactly once into a shared row cache (upfront);
    every one of the ``n_partitions`` per-partition joins then re-reads the
    cached rows at CPU cost -- the build work those joins charge themselves.
    Only the scan and the cache materialisation are priced here; the
    ``n_partitions``-fold build CPU shows up in the per-partition join
    splits, which is what makes broadcasting a *large* inner lose to
    repartitioning it (built once, not ``n`` times).
    """
    if n_partitions < 1:
        raise ValueError("n_partitions must be at least 1")
    return CostSplit(
        upfront_ms=inner_scan_ms
        + max(0.0, est_inner_rows) * hw.cpu_tuple_cost_ms,
        streaming_ms=0.0,
    )


def repartition_cost(
    source_cost_ms: float,
    est_rows: float,
    est_pages: float,
    hw: HardwareParameters,
) -> CostSplit:
    """Cost of hash-splitting a stream into per-partition buckets.

    The source is drained once (``source_cost_ms``), every row pays one
    routing-hash CPU charge, and the bucketed rows take one modeled spill
    round-trip through scratch storage: a seek plus ``pages - 1`` sequential
    writes out, the same back in.  All upfront -- no bucket can be consumed
    before routing has seen the last source row.
    """
    if est_rows < 0 or est_pages < 0:
        raise ValueError("estimates must be non-negative")
    spill_ms = 0.0
    if est_pages >= 1.0:
        spill_ms = 2 * (
            hw.seek_cost_ms + (est_pages - 1) * hw.seq_page_cost_ms
        )
    return CostSplit(
        upfront_ms=source_cost_ms
        + est_rows * hw.cpu_tuple_cost_ms
        + spill_ms,
        streaming_ms=0.0,
    )
