"""The correlation-aware analytical cost model (Sections 3 and 4).

The model predicts the cost, in milliseconds of simulated disk time, of the
three access methods the paper considers:

* a full sequential table scan (:func:`scan_cost`);
* a pipelined secondary index scan, which pays one random seek per tuple
  visited (:func:`pipelined_lookup_cost`);
* a sorted (bitmap) secondary index scan in the presence of correlations
  (:func:`sorted_lookup_cost`), the paper's central formula::

      c_pages    = c_tups / tups_per_page
      cost       = min(n_lookups * c_per_u *
                         (seek_cost * btree_height + seq_page_cost * c_pages),
                       cost_scan)

* a correlation-map lookup (:func:`cm_lookup_cost`), which is the sorted-scan
  formula evaluated with the CM's bucket-level statistics plus the cost of
  reading the (small, usually memory-resident) CM itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import CorrelationProfile, HardwareParameters, TableProfile


def scan_cost(profile: TableProfile, hw: HardwareParameters) -> float:
    """Cost of a full sequential scan: ``seq_page_cost * p`` (Section 3)."""
    return profile.num_pages * hw.seq_page_cost_ms


def pipelined_lookup_cost(
    n_lookups: int,
    correlation: CorrelationProfile,
    profile: TableProfile,
    hw: HardwareParameters,
) -> float:
    """Cost of a pipelined (unsorted) secondary B+Tree scan (Section 3.1).

    Each of the ``n_lookups * u_tups`` matching tuples is fetched with a
    separate descent of ``btree_height`` random seeks::

        cost = n_lookups * u_tups * seek_cost * btree_height
    """
    if n_lookups < 0:
        raise ValueError("n_lookups must be non-negative")
    return (
        n_lookups
        * correlation.u_tups
        * hw.seek_cost_ms
        * profile.btree_height
    )


def sorted_lookup_cost(
    n_lookups: int,
    correlation: CorrelationProfile,
    profile: TableProfile,
    hw: HardwareParameters,
    *,
    clamp_to_scan: bool = True,
) -> float:
    """Cost of a sorted (bitmap) secondary index scan with correlations.

    This is the paper's Section 4.1 formula.  For each of the ``n_lookups``
    unclustered values the scan visits ``c_per_u`` clustered values; each
    visit costs one clustered-index descent (``btree_height`` seeks) plus a
    sequential read of the ``c_pages`` heap pages holding that clustered
    value.  The access pattern degenerates into a full scan once it touches a
    large fraction of the table, so the result is clamped by ``cost_scan``.
    """
    if n_lookups < 0:
        raise ValueError("n_lookups must be non-negative")
    c_pages = correlation.c_pages(profile.tups_per_page)
    per_value_cost = (
        hw.seek_cost_ms * profile.btree_height + hw.seq_page_cost_ms * c_pages
    )
    cost = n_lookups * correlation.c_per_u * per_value_cost
    if clamp_to_scan:
        return min(cost, scan_cost(profile, hw))
    return cost


@dataclass(frozen=True)
class CMCostInputs:
    """Bucket-level statistics describing a correlation-map lookup.

    ``buckets_per_lookup``
        Average number of *clustered buckets* (or clustered values when the
        clustered side is unbucketed) returned by the CM per predicated
        value -- the bucket-level analogue of ``c_per_u``.
    ``pages_per_bucket``
        Average number of contiguous heap pages covered by one clustered
        bucket -- the bucket-level analogue of ``c_pages``.
    ``cm_pages``
        Size of the CM itself in pages.  CMs normally stay cached, but a
        cold lookup must read them; keeping the term makes the size/
        performance trade-off of Figure 7 visible to the model.
    ``cm_resident``
        Whether the CM is assumed to be cached in RAM (the common case).
    """

    buckets_per_lookup: float
    pages_per_bucket: float
    cm_pages: float = 1.0
    cm_resident: bool = True


def cm_lookup_cost(
    n_lookups: int,
    inputs: CMCostInputs,
    profile: TableProfile,
    hw: HardwareParameters,
    *,
    clamp_to_scan: bool = True,
) -> float:
    """Cost of answering ``n_lookups`` predicated values through a CM.

    The structure of the formula is identical to :func:`sorted_lookup_cost`,
    with value-level statistics replaced by bucket-level statistics: for each
    predicated value the executor visits ``buckets_per_lookup`` clustered
    buckets, paying a clustered-index descent plus a sequential sweep of the
    bucket's pages.  Reading the CM itself costs one sequential pass over its
    pages when it is not memory resident.
    """
    if n_lookups < 0:
        raise ValueError("n_lookups must be non-negative")
    per_bucket_cost = (
        hw.seek_cost_ms * profile.btree_height
        + hw.seq_page_cost_ms * inputs.pages_per_bucket
    )
    cost = n_lookups * inputs.buckets_per_lookup * per_bucket_cost
    if not inputs.cm_resident:
        cost += hw.seek_cost_ms + hw.seq_page_cost_ms * inputs.cm_pages
    if clamp_to_scan:
        return min(cost, scan_cost(profile, hw))
    return cost


def speedup_over_scan(
    lookup_cost: float, profile: TableProfile, hw: HardwareParameters
) -> float:
    """How many times faster than a table scan a lookup is (>= 1 is a win)."""
    if lookup_cost <= 0:
        return float("inf")
    return scan_cost(profile, hw) / lookup_cost
