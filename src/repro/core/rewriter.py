"""Predicate introduction: rewriting queries to exploit correlations.

The paper's prototype runs as a front end that rewrites ``SELECT`` queries to
add an ``IN`` clause over the clustered attribute (Section 7.1)::

    SELECT * FROM lineitem WHERE receiptdate = t
        -->
    SELECT * FROM lineitem WHERE receiptdate = t
                             AND shipdate IN (s1 ... sn)

where ``s1 ... sn`` are the clustered values the CM maps ``t`` to.  The
rewritten query lets an unmodified optimizer use the clustered index while
the original predicate filters out the CM's false positives.

This module produces that rewriting in a declarative form
(:class:`RewrittenPredicate`) consumed by the execution engine, and can also
render it as SQL text for documentation and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.correlation_map import CorrelationMap
from repro.core.composite import ValueConstraint


@dataclass(frozen=True)
class RewrittenPredicate:
    """The result of rewriting a query through a CM.

    ``clustered_attribute`` / ``clustered_values``
        The introduced ``IN`` predicate: the clustered attribute (or the
        clustered bucket-id column) restricted to the CM's lookup result.
    ``residual_constraints``
        The original predicates over the CM attributes; they must still be
        applied to every fetched tuple because the CM (especially when
        bucketed) over-approximates the matching clustered values.
    """

    clustered_attribute: str
    clustered_values: tuple[Any, ...]
    residual_constraints: Mapping[str, ValueConstraint]

    @property
    def is_empty(self) -> bool:
        """True when no clustered value co-occurs: the result is empty."""
        return not self.clustered_values

    def to_sql(self, table: str, *, select_list: str = "*") -> str:
        """Render the rewritten query as SQL text (for reports/debugging)."""
        clauses = []
        for attribute, constraint in self.residual_constraints.items():
            clauses.append(_constraint_to_sql(attribute, constraint))
        in_list = ", ".join(_literal(v) for v in self.clustered_values)
        clauses.append(f"{self.clustered_attribute} IN ({in_list})")
        where = " AND ".join(clauses)
        return f"SELECT {select_list} FROM {table} WHERE {where}"


def _literal(value: Any) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


def _constraint_to_sql(attribute: str, constraint: ValueConstraint) -> str:
    if constraint.values is not None:
        values = sorted(constraint.values, key=repr)
        if len(values) == 1:
            return f"{attribute} = {_literal(values[0])}"
        rendered = ", ".join(_literal(v) for v in values)
        return f"{attribute} IN ({rendered})"
    if constraint.low is not None and constraint.high is not None:
        return (
            f"{attribute} BETWEEN {_literal(constraint.low)}"
            f" AND {_literal(constraint.high)}"
        )
    if constraint.low is not None:
        return f"{attribute} >= {_literal(constraint.low)}"
    if constraint.high is not None:
        return f"{attribute} <= {_literal(constraint.high)}"
    return "TRUE"


class QueryRewriter:
    """Rewrites predicates over CM attributes into clustered-index lookups."""

    def __init__(self, cm: CorrelationMap, *, clustered_column: str | None = None) -> None:
        self.cm = cm
        #: Column name the introduced IN-list ranges over.  When the table
        #: assigns clustered bucket ids, this is the bucket-id column rather
        #: than the clustered attribute itself.
        self.clustered_column = clustered_column or cm.clustered_attribute

    def applicable(self, constraints: Mapping[str, ValueConstraint]) -> bool:
        """A CM is usable when the query constrains at least one CM attribute.

        (Partially constrained composite CMs are allowed; unconstrained
        attributes simply match every bucket.)
        """
        return any(attribute in constraints for attribute in self.cm.attributes)

    def rewrite(
        self, constraints: Mapping[str, ValueConstraint]
    ) -> RewrittenPredicate:
        """Produce the rewritten predicate for the given query constraints."""
        if not self.applicable(constraints):
            raise ValueError(
                f"no predicate over CM attributes {self.cm.attributes}"
            )
        cm_constraints = {
            attribute: constraint
            for attribute, constraint in constraints.items()
            if attribute in self.cm.attributes
        }
        clustered_values = self.cm.lookup_constraints(cm_constraints)
        return RewrittenPredicate(
            clustered_attribute=self.clustered_column,
            clustered_values=tuple(clustered_values),
            residual_constraints=dict(cm_constraints),
        )
