"""Bucketing of unclustered and clustered attributes (Sections 5.4 and 6.1).

Bucketing is what keeps correlation maps orders of magnitude smaller than
secondary B+Trees:

* the *unclustered* attribute (the CM key) is bucketed by truncating values
  into fixed-width ranges, trading CM size against false positives;
* the *clustered* attribute is bucketed by assigning consecutive runs of
  tuples to numbered buckets during clustering, so the CM can map to compact
  bucket ids instead of (possibly many-valued) clustered keys.

This module provides the bucketer objects used as CM keys, the enumeration of
candidate bucket widths considered by the CM Advisor (between 2**2 and 2**16
buckets, widths scaling exponentially), and the clustered-side bucket
assignment algorithm of Section 6.1.1.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

#: The advisor considers bucketings that produce between 2**2 and 2**16
#: buckets (Section 6.1.2).  Both limits are configurable per call.
MIN_BUCKETS = 2 ** 2
MAX_BUCKETS = 2 ** 16


class Bucketer(ABC):
    """Maps attribute values to bucket keys (the value stored in the CM)."""

    @abstractmethod
    def bucket(self, value: Any) -> Any:
        """Return the bucket key for ``value``."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable description used in advisor reports."""

    def bucket_range(self, low: Any, high: Any) -> tuple[Any, Any]:
        """Bucket keys of an inclusive value range (for range predicates)."""
        return self.bucket(low), self.bucket(high)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class IdentityBucketer(Bucketer):
    """No bucketing: every distinct value is its own bucket."""

    def bucket(self, value: Any) -> Any:
        return value

    def describe(self) -> str:
        return "none"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IdentityBucketer)

    def __hash__(self) -> int:
        return hash("IdentityBucketer")


class WidthBucketer(Bucketer):
    """Truncates numeric values into fixed-width ranges.

    The bucket key is the lower bound of the range (the paper stores "only
    the lower bounds of the intervals"): ``floor((v - origin) / width)``
    scaled back to value units.
    """

    def __init__(self, width: float, *, origin: float = 0.0) -> None:
        if width <= 0:
            raise ValueError("bucket width must be positive")
        self.width = width
        self.origin = origin

    def bucket(self, value: Any) -> float:
        index = math.floor((value - self.origin) / self.width)
        return self.origin + index * self.width

    def bucket_index(self, value: Any) -> int:
        return math.floor((value - self.origin) / self.width)

    def describe(self) -> str:
        if float(self.width).is_integer():
            return f"width={int(self.width)}"
        return f"width={self.width:g}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, WidthBucketer)
            and other.width == self.width
            and other.origin == self.origin
        )

    def __hash__(self) -> int:
        return hash(("WidthBucketer", self.width, self.origin))


class QuantileBucketer(Bucketer):
    """Variable-width buckets with (approximately) equal tuple counts.

    This implements the paper's future-work extension for skewed value
    distributions: boundaries are chosen from a sample so that each bucket
    holds roughly the same number of tuples.  The bucket key is the bucket's
    ordinal number.
    """

    def __init__(self, boundaries: Sequence[Any]) -> None:
        self.boundaries = sorted(boundaries)

    @classmethod
    def from_sample(cls, values: Iterable[Any], num_buckets: int) -> "QuantileBucketer":
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        ordered = sorted(values)
        if not ordered:
            return cls([])
        boundaries = []
        for i in range(1, num_buckets):
            index = int(round(i * len(ordered) / num_buckets))
            index = min(max(index, 0), len(ordered) - 1)
            boundaries.append(ordered[index])
        return cls(sorted(set(boundaries)))

    def bucket(self, value: Any) -> int:
        return bisect_right(self.boundaries, value)

    @property
    def num_buckets(self) -> int:
        return len(self.boundaries) + 1

    def describe(self) -> str:
        return f"quantile({self.num_buckets} buckets)"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, QuantileBucketer) and other.boundaries == self.boundaries

    def __hash__(self) -> int:
        return hash(("QuantileBucketer", tuple(self.boundaries)))


@dataclass(frozen=True)
class BucketingOption:
    """One candidate bucketing for an attribute, as enumerated by the advisor.

    ``level`` is the paper's "bucket level": each bucket covers ``2**level``
    distinct values of the attribute (level 0 = no bucketing).
    """

    attribute: str
    level: int
    bucketer: Bucketer
    estimated_buckets: int

    def describe(self) -> str:
        if self.level == 0:
            return "none"
        return f"2^{self.level}"


def candidate_bucketings(
    attribute: str,
    values: Sequence[Any],
    *,
    min_buckets: int = MIN_BUCKETS,
    max_buckets: int = MAX_BUCKETS,
    include_identity: bool = True,
) -> list[BucketingOption]:
    """Enumerate the bucketings the CM Advisor considers for one attribute.

    Follows Section 6.1.2: bucket sizes scale exponentially (2, 4, 8, ...
    distinct values per bucket) and only bucketings yielding between
    ``min_buckets`` and ``max_buckets`` buckets are kept.  Few-valued
    attributes (cardinality below ``min_buckets``) are offered unbucketed
    only, as in Table 4 of the paper ("mode", "type").

    Numeric attributes are bucketed by value truncation (:class:`WidthBucketer`
    with a width of ``2**level`` times the attribute's average value gap);
    non-numeric attributes only admit the identity bucketing.
    """
    distinct = sorted(set(values))
    cardinality = len(distinct)
    options: list[BucketingOption] = []
    if include_identity:
        options.append(
            BucketingOption(attribute, 0, IdentityBucketer(), max(1, cardinality))
        )
    if cardinality <= min_buckets:
        return options
    numeric = all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in distinct)
    if not numeric:
        return options

    span = float(distinct[-1]) - float(distinct[0])
    if span <= 0:
        return options
    average_gap = span / max(1, cardinality - 1)

    level = 1
    while True:
        values_per_bucket = 2 ** level
        estimated_buckets = math.ceil(cardinality / values_per_bucket)
        if estimated_buckets < min_buckets:
            break
        if estimated_buckets <= max_buckets:
            width = values_per_bucket * average_gap
            bucketer = WidthBucketer(width, origin=float(distinct[0]))
            # Remember which "2^level values per bucket" produced this width,
            # so advisor reports can describe the design the way the paper
            # does (e.g. "psfMag_g(2^13)").
            bucketer.level = level
            options.append(
                BucketingOption(attribute, level, bucketer, estimated_buckets)
            )
        level += 1
    return options


@dataclass(frozen=True)
class ClusteredBucket:
    """One clustered-attribute bucket: a contiguous run of tuples/pages."""

    bucket_id: int
    first_row: int
    last_row: int
    min_key: Any
    max_key: Any

    @property
    def num_rows(self) -> int:
        return self.last_row - self.first_row + 1


def assign_clustered_buckets(
    clustered_keys: Sequence[Any], tuples_per_bucket: int
) -> tuple[list[int], list[ClusteredBucket]]:
    """Assign clustered-bucket ids to rows sorted by the clustered attribute.

    Implements the algorithm of Section 6.1.1: rows are assigned to bucket
    ``i`` until ``tuples_per_bucket`` rows have been read *and* the clustered
    key changes, which guarantees that no clustered value straddles a bucket
    boundary.  Returns the per-row bucket ids plus the bucket descriptors.

    ``clustered_keys`` must already be sorted (the heap is clustered).
    """
    if tuples_per_bucket <= 0:
        raise ValueError("tuples_per_bucket must be positive")
    ids: list[int] = []
    buckets: list[ClusteredBucket] = []
    if not clustered_keys:
        return ids, buckets

    bucket_id = 0
    bucket_start = 0
    count_in_bucket = 0
    boundary_key: Any = None

    for position, key in enumerate(clustered_keys):
        if boundary_key is not None and key != boundary_key:
            buckets.append(
                ClusteredBucket(
                    bucket_id=bucket_id,
                    first_row=bucket_start,
                    last_row=position - 1,
                    min_key=clustered_keys[bucket_start],
                    max_key=clustered_keys[position - 1],
                )
            )
            bucket_id += 1
            bucket_start = position
            count_in_bucket = 0
            boundary_key = None
        ids.append(bucket_id)
        count_in_bucket += 1
        if count_in_bucket >= tuples_per_bucket and boundary_key is None:
            # Keep extending the bucket until the clustered value changes.
            boundary_key = key

    buckets.append(
        ClusteredBucket(
            bucket_id=bucket_id,
            first_row=bucket_start,
            last_row=len(clustered_keys) - 1,
            min_key=clustered_keys[bucket_start],
            max_key=clustered_keys[-1],
        )
    )
    return ids, buckets


def iter_bucket_keys_in_range(
    bucketer: Bucketer, keys: Iterable[Any], low: Any, high: Any
) -> Iterator[Any]:
    """Yield the CM bucket keys among ``keys`` that may contain values in
    the inclusive range ``[low, high]``.

    Works for any bucketer because it only relies on bucket keys being the
    images of values: a bucket key ``k`` qualifies when it equals the bucket
    of some boundary or lies between the bucketed boundaries.
    """
    low_key = bucketer.bucket(low) if low is not None else None
    high_key = bucketer.bucket(high) if high is not None else None
    for key in keys:
        if low_key is not None and key < low_key:
            continue
        if high_key is not None and key > high_key:
            continue
        yield key
