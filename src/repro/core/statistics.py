"""Computing the correlation statistics of the cost model (Section 4.2).

The central statistic is ``c_per_u``: the average number of distinct
clustered-attribute values that co-occur with each unclustered value::

    c_per_u = D(Au, Ac) / D(Au)

where ``D(.)`` counts distinct values.  The collector computes these counts
either exactly (one pass over the rows) or from estimators:

* Distinct Sampling (Gibbons) for single-attribute cardinalities, which needs
  a full scan but is highly accurate;
* the Adaptive Estimator (Charikar et al.) over an in-memory random sample,
  used by the CM Advisor when it must evaluate hundreds of candidate
  composite keys quickly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.bucketing import IdentityBucketer
from repro.core.composite import CompositeKeySpec
from repro.core.model import CorrelationProfile
from repro.sampling.adaptive import adaptive_estimate
from repro.sampling.distinct import DistinctSampler
from repro.sampling.reservoir import ReservoirSampler


def c_per_u_from_cardinalities(distinct_uc: float, distinct_u: float) -> float:
    """``c_per_u = D(Au, Ac) / D(Au)`` (Section 4.2)."""
    if distinct_u <= 0:
        raise ValueError("distinct count of the unclustered attribute must be positive")
    return distinct_uc / distinct_u


@dataclass(frozen=True)
class AttributeSummary:
    """Exact summary of one attribute (or composite key)."""

    distinct_values: int
    total_rows: int

    @property
    def tuples_per_value(self) -> float:
        """Average number of tuples carrying each value (``u_tups``/``c_tups``)."""
        if self.distinct_values == 0:
            return 0.0
        return self.total_rows / self.distinct_values


class StatisticsCollector:
    """Computes Table 1 / Table 2 statistics over a collection of rows.

    The collector works on plain row dictionaries so that it can be used both
    by the engine (exact statistics at clustering time) and by the advisor
    (estimates over samples).
    """

    def __init__(self, rows: Sequence[Mapping[str, Any]]) -> None:
        self._rows = rows

    @property
    def total_rows(self) -> int:
        return len(self._rows)

    # -- exact statistics -------------------------------------------------------

    def summarize(self, key_spec: CompositeKeySpec | str) -> AttributeSummary:
        """Exact distinct count for an attribute or bucketed composite key."""
        spec = self._as_spec(key_spec)
        seen = {spec.key_of(row) for row in self._rows}
        return AttributeSummary(distinct_values=len(seen), total_rows=len(self._rows))

    def correlation_profile(
        self,
        unclustered: CompositeKeySpec | str,
        clustered: CompositeKeySpec | str,
    ) -> CorrelationProfile:
        """Exact Table 2 statistics for the pair (Au, Ac)."""
        u_spec = self._as_spec(unclustered)
        c_spec = self._as_spec(clustered)
        u_values = set()
        c_values = set()
        uc_values = set()
        for row in self._rows:
            u_key = u_spec.key_of(row)
            c_key = c_spec.key_of(row)
            u_values.add(u_key)
            c_values.add(c_key)
            uc_values.add((u_key, c_key))
        total = len(self._rows)
        if not u_values or not c_values:
            return CorrelationProfile(c_per_u=0.0, c_tups=0.0, u_tups=0.0)
        return CorrelationProfile(
            c_per_u=c_per_u_from_cardinalities(len(uc_values), len(u_values)),
            c_tups=total / len(c_values),
            u_tups=total / len(u_values),
        )

    # -- estimated statistics -----------------------------------------------------

    def distinct_sampling_estimate(
        self, attribute: str, *, sample_size: int = 4096, seed: int = 0
    ) -> float:
        """Single-attribute cardinality via Gibbons' Distinct Sampling."""
        sampler = DistinctSampler(sample_size, seed=seed)
        for row in self._rows:
            sampler.add(row[attribute])
        return sampler.estimate()

    def collect_sample(
        self, *, sample_size: int = 30_000, seed: int = 0
    ) -> list[Mapping[str, Any]]:
        """A uniform random row sample (collected during the same scan)."""
        reservoir = ReservoirSampler(sample_size, seed=seed)
        reservoir.extend(self._rows)
        return reservoir.sample

    def estimated_correlation_profile(
        self,
        unclustered: CompositeKeySpec | str,
        clustered: CompositeKeySpec | str,
        sample: Sequence[Mapping[str, Any]] | None = None,
        *,
        sample_size: int = 30_000,
        seed: int = 0,
        total_rows: int | None = None,
    ) -> CorrelationProfile:
        """Table 2 statistics estimated with the Adaptive Estimator.

        ``sample`` may be supplied so that the advisor can reuse one sample
        across hundreds of candidate designs (as in Section 6.1.3).
        ``total_rows`` overrides the population size the sample is scaled to;
        this lets the advisor treat the rows it was given as a sample of a
        larger deployed table.
        """
        u_spec = self._as_spec(unclustered)
        c_spec = self._as_spec(clustered)
        if sample is None:
            sample = self.collect_sample(sample_size=sample_size, seed=seed)
        if not sample:
            return CorrelationProfile(c_per_u=0.0, c_tups=0.0, u_tups=0.0)
        total = max(total_rows or len(self._rows), len(sample))
        u_keys = [u_spec.key_of(row) for row in sample]
        c_keys = [c_spec.key_of(row) for row in sample]
        uc_keys = list(zip(u_keys, c_keys))
        d_u = adaptive_estimate(u_keys, total)
        d_c = adaptive_estimate(c_keys, total)
        d_uc = adaptive_estimate(uc_keys, total)
        # A pair cannot be rarer than either of its parts.
        d_uc = max(d_uc, d_u, d_c)
        return CorrelationProfile(
            c_per_u=c_per_u_from_cardinalities(d_uc, d_u),
            c_tups=total / max(d_c, 1.0),
            u_tups=total / max(d_u, 1.0),
        )

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _as_spec(key: CompositeKeySpec | str) -> CompositeKeySpec:
        if isinstance(key, CompositeKeySpec):
            return key
        return CompositeKeySpec.build([key])


#: Default reservoir capacity for incremental table statistics.  Large enough
#: that every bundled data set (<= ~100 k rows) keeps a *complete* sample --
#: exact statistics, bit-identical plans -- while genuinely large tables
#: degrade gracefully to sample-based estimates.
DEFAULT_STATS_SAMPLE_SIZE = 100_000


class IncrementalTableStatistics:
    """Planner statistics maintained incrementally, never scanning the heap.

    The paper's planner needs three families of statistics: distinct counts
    (for ``n_lookups`` and cardinalities), correlation profiles (``c_per_u``,
    ``c_tups``, ``u_tups`` of Table 2), and attribute min/max (range
    selectivity).  All three are served from state maintained as rows flow
    through the table:

    * a reservoir row sample (:class:`~repro.sampling.reservoir.ReservoirSampler`)
      updated on every insert and delete -- exact while it still holds every
      live row, estimated (Adaptive Estimator) beyond that;
    * per-attribute min/max updated on insert; a delete cannot cheaply tell
      whether it removed an extreme value, so the bounds stay conservatively
      wide until ``bounds_rebuild_deletes`` deletes have accumulated *and*
      the reservoir still holds every live row, at which point they are
      recomputed from it exactly.  Without that rebuild a shrinking table's
      range selectivity would over-estimate forever; without the
      completeness gate a subsample's interior extremes would clip the
      bounds below the live domain and flip the error to under-estimation;
    * the live row count.

    Derived profiles are cached until the next insert/delete, so repeated
    planning between updates is O(1) and planning after an update is bounded
    by the sample size -- independent of the heap.
    """

    def __init__(
        self,
        *,
        sample_capacity: int = DEFAULT_STATS_SAMPLE_SIZE,
        seed: int = 0,
        bounds_rebuild_deletes: int | None = None,
        refresh_ops: int | None = None,
    ) -> None:
        if sample_capacity <= 0:
            raise ValueError("sample_capacity must be positive")
        if bounds_rebuild_deletes is not None and bounds_rebuild_deletes <= 0:
            raise ValueError("bounds_rebuild_deletes must be positive")
        if refresh_ops is not None and refresh_ops <= 0:
            raise ValueError("refresh_ops must be positive")
        self.sample_capacity = sample_capacity
        self.bounds_rebuild_deletes = (
            bounds_rebuild_deletes
            if bounds_rebuild_deletes is not None
            else max(64, sample_capacity // 100)
        )
        #: Periodic re-seeding policy: after this many observed inserts +
        #: deletes the owner should call :meth:`rebuild` with a fresh scan
        #: (see :attr:`refresh_due`).  ``None`` disables the policy.  This
        #: is the full-refresh complement of the bounds-only rebuild above:
        #: once the reservoir is a *subsample*, deletes erode it (discarded
        #: rows are not replaced) and its distribution slowly drifts from
        #: the live table; a periodic re-seed restores an exactly uniform --
        #: or, for small tables, complete -- sample.
        self.refresh_ops = refresh_ops
        self._seed = seed
        self._reset()

    def _reset(self) -> None:
        self._reservoir = ReservoirSampler(self.sample_capacity, seed=self._seed)
        self._total_rows = 0
        self._minmax: dict[str, tuple[Any, Any]] = {}
        #: Attributes whose values turned out not to be mutually comparable.
        self._untracked: set[str] = set()
        self._deletes_since_bounds_rebuild = 0
        #: Whether any delete since the last rebuild hit a min/max value.
        self._bounds_possibly_stale = False
        self._ops_since_refresh = 0
        self._profile_cache: dict[tuple, CorrelationProfile] = {}
        self._cardinality_cache: dict[tuple, int] = {}
        self._selectivity_cache: dict[Any, float] = {}

    # -- maintenance ------------------------------------------------------------

    @property
    def refresh_due(self) -> bool:
        """True once ``refresh_ops`` maintenance operations have accumulated.

        The statistics object cannot scan the heap itself; the owning table
        checks this after each insert/delete and calls :meth:`rebuild` with
        a fresh row scan when it trips.
        """
        return (
            self.refresh_ops is not None
            and self._ops_since_refresh >= self.refresh_ops
        )

    def observe_insert(self, row: Mapping[str, Any]) -> None:
        self._total_rows += 1
        self._ops_since_refresh += 1
        self._reservoir.add(row)
        for attribute, value in row.items():
            self._observe_value(attribute, value)
        self._invalidate()

    def observe_delete(self, row: Mapping[str, Any]) -> None:
        self._total_rows = max(0, self._total_rows - 1)
        self._ops_since_refresh += 1
        self._reservoir.discard(row)
        # A single delete leaves min/max conservatively wide (we cannot know
        # cheaply whether duplicates of an extreme remain), but enough churn
        # re-derives them from the reservoir so Between selectivity tracks a
        # shrinking domain.  Three gates keep the rebuild exact and cheap:
        # the delete *count* threshold rate-limits the O(sample) pass, the
        # *touched-a-bound* flag skips it entirely for interior-only churn
        # (whose rebuild would be a no-op), and the *completeness* check
        # refuses to clip bounds from a subsample whose extremes can sit
        # strictly inside the live domain (that would turn the safe
        # over-estimate into an under-estimate).
        self._deletes_since_bounds_rebuild += 1
        if not self._bounds_possibly_stale:
            self._bounds_possibly_stale = self._touches_bound(row)
        if (
            self._bounds_possibly_stale
            and self._deletes_since_bounds_rebuild >= self.bounds_rebuild_deletes
            and self.sample_is_complete
        ):
            self._rebuild_bounds_from_sample()
        self._invalidate()

    def _touches_bound(self, row: Mapping[str, Any]) -> bool:
        """Whether deleting ``row`` may have shrunk any attribute's bounds."""
        for attribute, value in row.items():
            bounds = self._minmax.get(attribute)
            if bounds is not None and (value == bounds[0] or value == bounds[1]):
                return True
        return False

    def _rebuild_bounds_from_sample(self) -> None:
        """Recompute per-attribute min/max from the (complete) reservoir.

        Only called while the sample holds every live row, so the rebuilt
        bounds are exact.  Attributes flagged as non-comparable stay
        untracked.
        """
        self._minmax = {}
        for row in self._reservoir.sample:
            for attribute, value in row.items():
                self._observe_value(attribute, value)
        self._deletes_since_bounds_rebuild = 0
        self._bounds_possibly_stale = False

    def rebuild(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Recompute from scratch: re-seed the reservoir, bounds and caches.

        Called by DDL that rewrites the heap anyway (clustering) and by the
        periodic :attr:`refresh_due` policy; also resets the refresh clock.
        """
        self._reset()
        for row in rows:
            self._total_rows += 1
            self._reservoir.add(row)
            for attribute, value in row.items():
                self._observe_value(attribute, value)

    def _observe_value(self, attribute: str, value: Any) -> None:
        if attribute in self._untracked:
            return
        bounds = self._minmax.get(attribute)
        if bounds is None:
            self._minmax[attribute] = (value, value)
            return
        low, high = bounds
        try:
            if value < low:
                low = value
            elif value > high:
                high = value
        except TypeError:
            self._untracked.add(attribute)
            self._minmax.pop(attribute, None)
            return
        self._minmax[attribute] = (low, high)

    def _invalidate(self) -> None:
        self._profile_cache.clear()
        self._cardinality_cache.clear()
        self._selectivity_cache.clear()

    # -- views ------------------------------------------------------------------

    @property
    def total_rows(self) -> int:
        return self._total_rows

    @property
    def sample_rows(self) -> list[Mapping[str, Any]]:
        return self._reservoir.sample

    @property
    def sample_is_complete(self) -> bool:
        """True while the reservoir still holds every live row (exact mode)."""
        return len(self._reservoir) == self._total_rows

    def attribute_range(self, attribute: str) -> tuple[Any, Any] | None:
        """Incrementally-maintained ``(min, max)``; ``None`` when unknown."""
        return self._minmax.get(attribute)

    def match_fraction(
        self,
        matches: "Callable[[Mapping[str, Any]], bool]",
        *,
        key: Any = None,
    ) -> float:
        """Fraction of live rows satisfying ``matches``, from the sample.

        The reservoir is a uniform sample of the live rows, so the sample
        match rate is an unbiased selectivity estimate (exact while the
        sample is complete).  ``matches`` is a plain callable -- typically
        ``PredicateSet.matches`` -- so this layer stays independent of the
        engine's predicate types.  An empty table estimates 0.0.

        ``key``, when hashable, memoises the result until the next insert or
        delete, like the sibling cardinality/profile caches -- replanning an
        unchanged query then skips the sample sweep entirely.
        """
        if key is not None:
            try:
                return self._selectivity_cache[key]
            except KeyError:
                pass
            except TypeError:
                key = None
        rows = self._reservoir.sample
        fraction = (
            sum(1 for row in rows if matches(row)) / len(rows) if rows else 0.0
        )
        if key is not None:
            self._selectivity_cache[key] = fraction
        return fraction

    # -- derived statistics ------------------------------------------------------

    def cardinality(self, key: CompositeKeySpec | str) -> int:
        """Distinct-value count of an attribute or composite key.

        Exact while the sample is complete; otherwise the Adaptive Estimator
        scaled to the live row count.
        """
        spec = StatisticsCollector._as_spec(key)
        cache_key = self._spec_cache_key(spec)
        if cache_key is not None and cache_key in self._cardinality_cache:
            return self._cardinality_cache[cache_key]
        rows = self._reservoir.sample
        if not rows:
            return 0
        keys = [spec.key_of(row) for row in rows]
        if self.sample_is_complete:
            estimate = len(set(keys))
        else:
            estimate = int(round(adaptive_estimate(keys, max(self._total_rows, len(keys)))))
        if cache_key is not None:
            self._cardinality_cache[cache_key] = estimate
        return estimate

    def correlation_profile(
        self,
        unclustered: CompositeKeySpec | str,
        clustered: CompositeKeySpec | str,
    ) -> CorrelationProfile:
        """Table 2 statistics for (Au, Ac), exact or sample-estimated."""
        u_spec = StatisticsCollector._as_spec(unclustered)
        c_spec = StatisticsCollector._as_spec(clustered)
        u_key = self._spec_cache_key(u_spec)
        c_key = self._spec_cache_key(c_spec)
        cache_key = (u_key, c_key) if u_key is not None and c_key is not None else None
        if cache_key is not None and cache_key in self._profile_cache:
            return self._profile_cache[cache_key]
        rows = self._reservoir.sample
        collector = StatisticsCollector(rows)
        if self.sample_is_complete:
            profile = collector.correlation_profile(u_spec, c_spec)
        else:
            profile = collector.estimated_correlation_profile(
                u_spec, c_spec, rows, total_rows=self._total_rows
            )
        if cache_key is not None:
            self._profile_cache[cache_key] = profile
        return profile

    @staticmethod
    def _spec_cache_key(spec: CompositeKeySpec) -> tuple | None:
        """A hashable cache key for unbucketed specs (the planner's case)."""
        if any(not isinstance(part.bucketer, IdentityBucketer) for part in spec.parts):
            return None
        return tuple(spec.attributes)


def join_fanout(
    inner_rows: float, outer_key_cardinality: float, inner_key_cardinality: float
) -> float:
    """Expected inner matches per outer row for an equi-join.

    The textbook containment-of-values estimate: the join produces
    ``T(R) * T(S) / max(V(R, a), V(S, b))`` rows, so each outer (``R``) row
    matches ``T(S) / max(V(R, a), V(S, b))`` inner rows.  Both cardinalities
    come from the tables' reservoir samples, so join planning -- like
    single-table planning -- never scans a heap.  A foreign-key join onto a
    key column gives the familiar special case of one match per outer row.
    """
    distinct = max(outer_key_cardinality, inner_key_cardinality, 1.0)
    return max(0.0, inner_rows) / distinct


def exact_c_per_u(
    rows: Iterable[Mapping[str, Any]],
    unclustered: CompositeKeySpec | str,
    clustered: CompositeKeySpec | str,
) -> float:
    """Convenience function: exact ``c_per_u`` over an iterable of rows.

    Both sides accept either a plain attribute name or a (possibly bucketed)
    :class:`CompositeKeySpec`.
    """
    u_spec = (
        unclustered
        if isinstance(unclustered, CompositeKeySpec)
        else CompositeKeySpec.build([unclustered])
    )
    c_spec = (
        clustered
        if isinstance(clustered, CompositeKeySpec)
        else CompositeKeySpec.build([clustered])
    )
    u_values = set()
    uc_values = set()
    for row in rows:
        u_key = u_spec.key_of(row)
        u_values.add(u_key)
        uc_values.add((u_key, c_spec.key_of(row)))
    if not u_values:
        return 0.0
    return len(uc_values) / len(u_values)
