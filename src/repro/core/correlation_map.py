"""The Correlation Map (CM) access method (Section 5).

A CM maps each distinct *value* (or bucket of values) of an unclustered
attribute to the set of clustered-attribute values (or clustered bucket ids)
it co-occurs with, together with a co-occurrence count used by deletions
(Algorithm 1 of the paper).  Because the mapping is at value granularity
rather than tuple granularity, and because both sides can be bucketed, a CM
is typically orders of magnitude smaller than the equivalent secondary
B+Tree, small enough to remain cached in memory even while heavily updated.

Lookups return the co-occurring clustered targets for a set of predicated
values (``cm_lookup`` in Section 5.2); the executor then scans the clustered
index for those targets and re-applies the original predicate to discard
false positives.  The same lookup serves two engine roles: single-table
``CorrelationMapScan`` plans, and the CM-guided inner path of an
index-nested-loop join, where each outer row's join-key value is looked up
to find the clustered buckets worth sweeping.

A CM is a plain in-memory structure that can also be used standalone::

    >>> from repro.core.composite import CompositeKeySpec
    >>> from repro.core.correlation_map import CorrelationMap
    >>> cm = CorrelationMap("cm_city", CompositeKeySpec.build(["city"]), "state")
    >>> _ = cm.build([
    ...     {"city": "boston", "state": "MA"},
    ...     {"city": "salem", "state": "MA"},
    ...     {"city": "salem", "state": "OR"},
    ... ])
    >>> cm.lookup({"city": "salem"})
    ['MA', 'OR']
    >>> cm.measured_c_per_u()   # avg clustered targets per stored key
    1.5
    >>> cm.delete({"city": "salem", "state": "OR"})   # Algorithm 1
    True
    >>> cm.lookup({"city": "salem"})
    ['MA']
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.bucketing import Bucketer
from repro.core.composite import (
    BucketConstraint,
    CompositeKeySpec,
    ValueConstraint,
    key_matches,
)

#: Byte estimates used for size reporting.  A CM entry stores one clustered
#: target and its co-occurrence count under an already-stored key.
_TARGET_BYTES = 8
_COUNT_BYTES = 4
_KEY_OVERHEAD_BYTES = 8


def _value_bytes(value: Any) -> int:
    if isinstance(value, tuple):
        return sum(_value_bytes(part) for part in value)
    if isinstance(value, str):
        return max(4, len(value))
    return 8


@dataclass
class CMStats:
    """Summary statistics reported by :meth:`CorrelationMap.stats`."""

    distinct_keys: int
    total_entries: int
    size_bytes: int
    max_targets_per_key: int
    avg_targets_per_key: float

    @property
    def size_megabytes(self) -> float:
        return self.size_bytes / (1024 * 1024)


class CorrelationMap:
    """A compressed mapping from unclustered values to clustered targets.

    Parameters
    ----------
    name:
        Name of the CM (used in catalogs and reports).
    key_spec:
        The (possibly composite, possibly bucketed) CM attribute(s).
    clustered_attribute:
        The clustered attribute whose values (or bucket ids) the CM stores.
    clustered_bucketer:
        Optional bucketer applied to the clustered attribute; when the table
        assigns clustered bucket ids (Section 6.1.1) the engine instead passes
        the bucket id as the target directly via ``target_of``.
    target_of:
        Optional callable ``row -> target`` overriding how the clustered
        target of a row is derived.  Defaults to (bucketed) row value of
        ``clustered_attribute``.
    """

    def __init__(
        self,
        name: str,
        key_spec: CompositeKeySpec,
        clustered_attribute: str,
        *,
        clustered_bucketer: Bucketer | None = None,
        target_of: Callable[[Mapping[str, Any]], Any] | None = None,
    ) -> None:
        self.name = name
        self.key_spec = key_spec
        self.clustered_attribute = clustered_attribute
        self.clustered_bucketer = clustered_bucketer
        self._target_of = target_of
        #: key tuple -> {clustered target -> co-occurrence count}
        self._mapping: dict[tuple[Any, ...], dict[Any, int]] = {}
        self._total_rows = 0

    # -- derivation of keys and targets ---------------------------------------

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.key_spec.attributes

    def key_of(self, row: Mapping[str, Any]) -> tuple[Any, ...]:
        return self.key_spec.key_of(row)

    def target_of(self, row: Mapping[str, Any]) -> Any:
        if self._target_of is not None:
            return self._target_of(row)
        value = row[self.clustered_attribute]
        if self.clustered_bucketer is not None:
            return self.clustered_bucketer.bucket(value)
        return value

    # -- construction and maintenance (Algorithm 1) -----------------------------

    def build(self, rows: Iterable[Mapping[str, Any]]) -> "CorrelationMap":
        """Build the CM with one scan of the table (Algorithm 1)."""
        for row in rows:
            self.insert(row)
        return self

    def insert(self, row: Mapping[str, Any]) -> None:
        """Maintain the CM for one inserted tuple."""
        key = self.key_of(row)
        target = self.target_of(row)
        targets = self._mapping.setdefault(key, {})
        targets[target] = targets.get(target, 0) + 1
        self._total_rows += 1

    def delete(self, row: Mapping[str, Any]) -> bool:
        """Maintain the CM for one deleted tuple.

        Decrements the co-occurrence count and removes the clustered target
        once its count reaches zero; removes the key once it has no targets.
        Returns ``False`` when the row was not represented (already absent).
        """
        key = self.key_of(row)
        target = self.target_of(row)
        targets = self._mapping.get(key)
        if not targets or target not in targets:
            return False
        targets[target] -= 1
        if targets[target] <= 0:
            del targets[target]
        if not targets:
            del self._mapping[key]
        self._total_rows -= 1
        return True

    def update(self, old_row: Mapping[str, Any], new_row: Mapping[str, Any]) -> None:
        """Updates are a delete followed by an insert (Section 5.1)."""
        self.delete(old_row)
        self.insert(new_row)

    # -- lookups (Section 5.2) -----------------------------------------------------

    def lookup(self, values: Iterable[Mapping[str, Any]] | Mapping[str, Any]) -> list[Any]:
        """``cm_lookup({v1 ... vN})``: clustered targets for exact key values.

        ``values`` is either one assignment of CM attributes to values or an
        iterable of such assignments; the result is the sorted union of the
        clustered targets of every assignment.
        """
        if isinstance(values, Mapping):
            values = [values]
        targets: set[Any] = set()
        for assignment in values:
            key = self.key_spec.key_of_values(assignment)
            targets.update(self._mapping.get(key, {}))
        return sorted(targets)

    def lookup_constraints(
        self, constraints: Mapping[str, ValueConstraint]
    ) -> list[Any]:
        """Clustered targets for arbitrary per-attribute constraints.

        Handles range predicates and partially-constrained composite keys by
        checking every stored key against the bucket-level constraints.  CMs
        are small (that is the point), so the linear pass is cheap; exact
        equality constraints over all attributes use the dictionary directly.
        """
        bucket_constraints = self.key_spec.bucket_constraints(constraints)
        if self._all_equality(bucket_constraints):
            return self._lookup_equality(bucket_constraints)
        targets: set[Any] = set()
        for key, key_targets in self._mapping.items():
            if key_matches(key, bucket_constraints):
                targets.update(key_targets)
        return sorted(targets)

    @staticmethod
    def _all_equality(constraints: Sequence[BucketConstraint]) -> bool:
        return all(constraint.buckets is not None for constraint in constraints)

    def _lookup_equality(self, constraints: Sequence[BucketConstraint]) -> list[Any]:
        from itertools import product

        targets: set[Any] = set()
        bucket_sets = [sorted(constraint.buckets) for constraint in constraints]
        for combination in product(*bucket_sets):
            targets.update(self._mapping.get(tuple(combination), {}))
        return sorted(targets)

    def keys(self) -> list[tuple[Any, ...]]:
        return list(self._mapping)

    def targets_of_key(self, key: tuple[Any, ...]) -> dict[Any, int]:
        return dict(self._mapping.get(key, {}))

    def co_occurrence_count(self, key: tuple[Any, ...], target: Any) -> int:
        return self._mapping.get(key, {}).get(target, 0)

    # -- size accounting -------------------------------------------------------------

    @property
    def distinct_keys(self) -> int:
        return len(self._mapping)

    @property
    def total_entries(self) -> int:
        """Number of (key, clustered target) pairs stored."""
        return sum(len(targets) for targets in self._mapping.values())

    @property
    def total_rows_represented(self) -> int:
        return self._total_rows

    def size_bytes(self) -> int:
        """Approximate in-memory / on-disk size of the CM."""
        size = 0
        for key, targets in self._mapping.items():
            size += _value_bytes(key) + _KEY_OVERHEAD_BYTES
            size += len(targets) * (_TARGET_BYTES + _COUNT_BYTES)
        return size

    def size_pages(self, page_size_bytes: int = 8192) -> int:
        return max(1, -(-self.size_bytes() // page_size_bytes))

    def stats(self) -> CMStats:
        targets_per_key = [len(targets) for targets in self._mapping.values()]
        return CMStats(
            distinct_keys=self.distinct_keys,
            total_entries=self.total_entries,
            size_bytes=self.size_bytes(),
            max_targets_per_key=max(targets_per_key, default=0),
            avg_targets_per_key=(
                sum(targets_per_key) / len(targets_per_key) if targets_per_key else 0.0
            ),
        )

    def measured_c_per_u(self) -> float:
        """The CM's own bucket-level ``c_per_u``: avg targets per stored key."""
        if not self._mapping:
            return 0.0
        return self.total_entries / self.distinct_keys

    def describe(self) -> str:
        return f"CM({self.key_spec.describe()}) -> {self.clustered_attribute}"
