"""Statistics and hardware parameters used by the analytical cost model.

These dataclasses mirror Tables 1 and 2 of the paper:

Table 1 (per-table statistics and hardware parameters)
    ``tups_per_page``, ``total_tups``, ``btree_height``, ``n_lookups``,
    ``u_tups``, ``seq_page_cost``, ``seek_cost``.

Table 2 (per attribute-pair correlation statistics)
    ``c_tups``  -- average number of tuples with each clustered value ``Ac``;
    ``c_per_u`` -- average number of distinct ``Ac`` values co-occurring with
    each unclustered value ``Au`` (the soft-FD strength, as in CORDS).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.storage.disk import DiskParameters


@dataclass(frozen=True)
class HardwareParameters:
    """Disk timing constants of the experimental platform (Table 1).

    ``cpu_tuple_cost_ms`` mirrors the disk model's per-tuple CPU charge; the
    paper's selection formulas are disk bound and ignore it, but the join
    cost model needs it to price in-memory work (hash-table builds and
    probes, explicit sorts) that performs no I/O at all.
    """

    seek_cost_ms: float = 5.5
    seq_page_cost_ms: float = 0.078
    cpu_tuple_cost_ms: float = 0.0002

    @classmethod
    def from_disk(cls, params: DiskParameters) -> "HardwareParameters":
        """Derive model parameters from the simulated disk's parameters."""
        return cls(
            seek_cost_ms=params.seek_cost_ms,
            seq_page_cost_ms=params.seq_page_cost_ms,
            cpu_tuple_cost_ms=params.cpu_tuple_cost_ms,
        )


@dataclass(frozen=True)
class TableProfile:
    """Per-table statistics required by every cost formula (Table 1)."""

    total_tups: int
    tups_per_page: int
    btree_height: int = 3

    def __post_init__(self) -> None:
        if self.total_tups < 0:
            raise ValueError("total_tups must be non-negative")
        if self.tups_per_page <= 0:
            raise ValueError("tups_per_page must be positive")
        if self.btree_height < 1:
            raise ValueError("btree_height must be at least 1")

    @property
    def num_pages(self) -> int:
        """Number of heap pages ``p = total_tups / tups_per_page``."""
        return max(1, math.ceil(self.total_tups / self.tups_per_page))


@dataclass(frozen=True)
class CorrelationProfile:
    """Correlation statistics for one (Au, Ac) attribute pair (Table 2).

    ``u_tups`` (from Table 1) is carried here as well because it describes the
    unclustered attribute of the same pair and is needed by the pipelined
    lookup cost.
    """

    #: Average number of distinct clustered values per unclustered value.
    c_per_u: float
    #: Average number of tuples carrying each clustered value.
    c_tups: float
    #: Average number of tuples carrying each unclustered value.
    u_tups: float = 1.0

    def __post_init__(self) -> None:
        if self.c_per_u < 0:
            raise ValueError("c_per_u must be non-negative")
        if self.c_tups < 0:
            raise ValueError("c_tups must be non-negative")
        if self.u_tups < 0:
            raise ValueError("u_tups must be non-negative")

    def c_pages(self, tups_per_page: int) -> float:
        """``c_pages = c_tups / tups_per_page`` (Section 4.1)."""
        if tups_per_page <= 0:
            raise ValueError("tups_per_page must be positive")
        return self.c_tups / tups_per_page
