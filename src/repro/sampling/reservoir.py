"""Reservoir sampling.

The CM Advisor needs a uniform random sample of table rows to feed the
Adaptive Estimator.  The paper collects this sample "during the DS table
scan, yielding an optimum random sample" (Section 4.2); reservoir sampling is
the standard single-pass way to do that.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Iterator


class ReservoirSampler:
    """Maintain a uniform random sample of fixed size over a stream.

    Algorithm R (Vitter): the first ``capacity`` items fill the reservoir;
    each later item replaces a random slot with probability
    ``capacity / items_seen``.
    """

    def __init__(self, capacity: int, *, seed: int | None = None) -> None:
        if capacity <= 0:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._items: list[Any] = []
        self._seen = 0

    @property
    def items_seen(self) -> int:
        return self._seen

    @property
    def sample(self) -> list[Any]:
        """The current reservoir contents (a copy)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def add(self, item: Any) -> None:
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self.capacity:
            self._items[slot] = item

    def extend(self, items: Iterable[Any]) -> None:
        for item in items:
            self.add(item)

    @classmethod
    def from_iterable(
        cls, items: Iterable[Any], capacity: int, *, seed: int | None = None
    ) -> "ReservoirSampler":
        sampler = cls(capacity, seed=seed)
        sampler.extend(items)
        return sampler
