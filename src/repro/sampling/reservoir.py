"""Reservoir sampling.

The CM Advisor needs a uniform random sample of table rows to feed the
Adaptive Estimator.  The paper collects this sample "during the DS table
scan, yielding an optimum random sample" (Section 4.2); reservoir sampling is
the standard single-pass way to do that.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Iterator


class ReservoirSampler:
    """Maintain a uniform random sample of fixed size over a stream.

    Algorithm R (Vitter): the first ``capacity`` items fill the reservoir;
    each later item replaces a random slot with probability
    ``capacity / items_seen``.

    The reservoir is unordered, so deletions (:meth:`discard`) use
    swap-remove, and an identity index maps stored objects to their slot --
    deleting an item that is *the* sampled object (the common case when the
    caller feeds the same row objects it stores) is O(1).
    """

    def __init__(self, capacity: int, *, seed: int | None = None) -> None:
        if capacity <= 0:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._items: list[Any] = []
        self._seen = 0
        #: id(stored object) -> its slot in ``_items``.  Entries exist exactly
        #: for the objects currently stored, so ids are never stale.
        self._slot_of: dict[int, int] = {}

    @property
    def items_seen(self) -> int:
        return self._seen

    @property
    def sample(self) -> list[Any]:
        """The current reservoir contents (a copy)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def add(self, item: Any) -> None:
        self._seen += 1
        if len(self._items) < self.capacity:
            self._slot_of[id(item)] = len(self._items)
            self._items.append(item)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self.capacity:
            evicted = self._items[slot]
            self._slot_of.pop(id(evicted), None)
            self._items[slot] = item
            self._slot_of[id(item)] = slot

    def extend(self, items: Iterable[Any]) -> None:
        for item in items:
            self.add(item)

    def discard(self, item: Any) -> bool:
        """Account for one deletion in the sampled stream.

        The stream length shrinks regardless; the sampled copy of ``item`` is
        removed when present.  Identity lookups hit the slot index in O(1);
        an equal-but-distinct object falls back to one linear scan.  Returns
        ``True`` when a sampled copy was removed.  Deletions keep the
        reservoir approximately uniform -- and exactly complete whenever the
        reservoir held the whole stream to begin with.
        """
        self._seen = max(0, self._seen - 1)
        slot = self._slot_of.get(id(item))
        if slot is None or self._items[slot] is not item:
            slot = next(
                (i for i, stored in enumerate(self._items) if stored == item), None
            )
            if slot is None:
                return False
        self._swap_remove(slot)
        return True

    def _swap_remove(self, slot: int) -> None:
        removed = self._items[slot]
        self._slot_of.pop(id(removed), None)
        last = self._items.pop()
        if slot < len(self._items):
            self._items[slot] = last
            self._slot_of[id(last)] = slot

    @classmethod
    def from_iterable(
        cls, items: Iterable[Any], capacity: int, *, seed: int | None = None
    ) -> "ReservoirSampler":
        sampler = cls(capacity, seed=seed)
        sampler.extend(items)
        return sampler
