"""Gibbons' Distinct Sampling for single-attribute cardinality estimation.

The algorithm (Gibbons, VLDB 2001) maintains a bounded *distinct sample*: each
distinct value is hashed to a level drawn from a geometric distribution, and
the sample keeps only values whose level is at least the current threshold.
When the sample overflows, the threshold is raised and lower-level values are
evicted.  The number of distinct values in the full data is then estimated as
``|sample| * 2**level``.

One full pass over the data yields estimates that are far more accurate than
estimators based on small random samples, which is why the paper uses it for
single-attribute cardinalities (Section 4.2).
"""

from __future__ import annotations

import hashlib
from typing import Any, Hashable, Iterable


def _hash64(value: Hashable, seed: int) -> int:
    """A stable 64-bit hash independent of Python's per-process salt."""
    data = f"{seed}:{value!r}".encode()
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


def _level_of(value: Hashable, seed: int) -> int:
    """The sampling level: number of trailing zero bits of the value's hash.

    A value lands on level >= l with probability 2**-l, which is the geometric
    level distribution the algorithm requires.
    """
    h = _hash64(value, seed)
    if h == 0:
        return 64
    return (h & -h).bit_length() - 1


class DistinctSampler:
    """Single-pass distinct-count estimator with a bounded sample.

    Parameters
    ----------
    sample_size:
        Maximum number of distinct values retained.  Larger samples reduce
        the estimation error; the paper-scale default keeps estimates within
        a few percent for the data sets used here.
    seed:
        Hash seed; two samplers with the same seed agree on levels, so the
        structure is deterministic for a given input.
    """

    def __init__(self, sample_size: int = 4096, *, seed: int = 0) -> None:
        if sample_size <= 0:
            raise ValueError("sample size must be positive")
        self.sample_size = sample_size
        self.seed = seed
        self.level = 0
        self._sample: dict[Any, int] = {}
        self._rows_seen = 0

    @property
    def rows_seen(self) -> int:
        return self._rows_seen

    @property
    def sample_values(self) -> list[Any]:
        return list(self._sample)

    def add(self, value: Hashable) -> None:
        """Process one attribute value from the scan."""
        self._rows_seen += 1
        if value in self._sample:
            return
        level = _level_of(value, self.seed)
        if level < self.level:
            return
        self._sample[value] = level
        if len(self._sample) > self.sample_size:
            self._raise_level()

    def extend(self, values: Iterable[Hashable]) -> None:
        for value in values:
            self.add(value)

    def _raise_level(self) -> None:
        """Raise the level threshold until the sample fits again."""
        while len(self._sample) > self.sample_size:
            self.level += 1
            self._sample = {
                value: level for value, level in self._sample.items() if level >= self.level
            }

    def estimate(self) -> float:
        """Estimated number of distinct values seen so far."""
        return len(self._sample) * (2 ** self.level)

    @property
    def is_exact(self) -> bool:
        """True while the sample has never overflowed (estimate is exact)."""
        return self.level == 0


def distinct_sample_estimate(
    values: Iterable[Hashable], *, sample_size: int = 4096, seed: int = 0
) -> float:
    """Convenience wrapper: estimate the number of distinct ``values``."""
    sampler = DistinctSampler(sample_size, seed=seed)
    sampler.extend(values)
    return sampler.estimate()
