"""Cardinality-estimation substrate used by the CM Advisor.

The paper estimates the ``c_per_u`` correlation statistic from distinct-value
counts (Section 4.2):

* single-attribute cardinalities come from Gibbons' *Distinct Sampling*
  algorithm, which scans the table once and is far more accurate than plain
  sampling;
* composite-attribute cardinalities (needed when the advisor enumerates
  hundreds of candidate composite CMs) come from the *Adaptive Estimator* of
  Charikar et al., computed over an in-memory random sample collected during
  the same scan.
"""

from repro.sampling.reservoir import ReservoirSampler
from repro.sampling.distinct import DistinctSampler, distinct_sample_estimate
from repro.sampling.adaptive import adaptive_estimate, gee_estimate

__all__ = [
    "ReservoirSampler",
    "DistinctSampler",
    "distinct_sample_estimate",
    "adaptive_estimate",
    "gee_estimate",
]
