"""Distinct-value estimators computed from a uniform random sample.

The CM Advisor must evaluate hundreds of candidate composite CM designs
(Section 6.1.3); running a full Distinct Sampling scan per candidate is not
feasible, so the paper estimates composite cardinalities from an in-memory
random sample of ~30 000 tuples using the *Adaptive Estimator* (AE) of
Charikar, Chaudhuri, Motwani and Narasayya (PODS 2000).

Two estimators are provided:

``gee_estimate``
    The Guaranteed-Error Estimator: ``sqrt(n/r) * f1 + sum_{j>=2} f_j`` where
    ``f_j`` is the number of values appearing exactly ``j`` times in the
    sample.  It matches the paper's lower bound on estimation error.

``adaptive_estimate``
    The AE refinement: values that are frequent in the sample are assumed to
    be fully observed, while the number of unseen *rare* values is estimated
    by modelling rare-value frequencies as (approximately) Poisson.  AE is
    more accurate than GEE on skewed data, which is why the paper prefers it.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Iterable, Sequence


def frequency_of_frequencies(sample: Iterable[Hashable]) -> Counter:
    """Return ``f_j``: how many distinct values occur exactly ``j`` times."""
    counts = Counter(sample)
    return Counter(counts.values())


def _validate(sample_size: int, total_rows: int) -> None:
    if sample_size <= 0:
        raise ValueError("sample must not be empty")
    if total_rows < sample_size:
        raise ValueError("total_rows must be at least the sample size")


def gee_estimate(sample: Sequence[Hashable], total_rows: int) -> float:
    """Guaranteed-Error Estimator for the number of distinct values."""
    sample = list(sample)
    _validate(len(sample), total_rows)
    freq = frequency_of_frequencies(sample)
    f1 = freq.get(1, 0)
    higher = sum(count for j, count in freq.items() if j >= 2)
    scale = math.sqrt(total_rows / len(sample))
    estimate = scale * f1 + higher
    return min(float(total_rows), max(estimate, float(len(set(sample)))))


def adaptive_estimate(
    sample: Sequence[Hashable],
    total_rows: int,
    *,
    rare_threshold: int | None = None,
) -> float:
    """Adaptive Estimator (AE) for the number of distinct values.

    The sample's values are split into *rare* (sample frequency below a
    cut-off) and *frequent* classes.  Frequent values are assumed to all have
    been seen.  For rare values the estimator solves for the Poisson rate
    ``m`` that makes the observed ``f_1``/``f_2`` counts consistent and scales
    the number of distinct rare values accordingly (equation (9) of Charikar
    et al.); when the sample has no duplicates among rare values it falls back
    to the GEE scaling, which is the correct limit.
    """
    sample = list(sample)
    _validate(len(sample), total_rows)
    counts = Counter(sample)
    distinct_in_sample = len(counts)
    r = len(sample)
    n = total_rows

    if rare_threshold is None:
        # Charikar et al. treat values with sample frequency > sqrt(r) as
        # frequent; small samples use a floor of 2 so f1/f2 stay meaningful.
        rare_threshold = max(2, int(math.sqrt(r)))

    rare_counts = {value: c for value, c in counts.items() if c <= rare_threshold}
    frequent_distinct = distinct_in_sample - len(rare_counts)
    rare_rows_in_sample = sum(rare_counts.values())
    distinct_rare_in_sample = len(rare_counts)

    if distinct_rare_in_sample == 0:
        return float(distinct_in_sample)

    freq = Counter(rare_counts.values())
    f1 = freq.get(1, 0)
    f2 = freq.get(2, 0)

    # Estimated number of rows (in the whole table) belonging to rare values:
    # rows not consumed by frequent values, assuming frequent values occur in
    # the table in proportion to their sample frequency.
    frequent_rows_in_sample = r - rare_rows_in_sample
    rare_rows_total = max(
        rare_rows_in_sample, n - frequent_rows_in_sample * (n / r) if r else 0
    )

    if f1 == 0:
        # Every rare value was seen at least twice; the sample very likely
        # covers all of them.
        return float(distinct_in_sample)

    if f2 == 0:
        # No collisions among rare values: fall back to the GEE-style scaling
        # restricted to the rare class.
        scale = math.sqrt(rare_rows_total / max(1, rare_rows_in_sample))
        rare_estimate = scale * f1 + (distinct_rare_in_sample - f1)
    else:
        # Poisson model: if rare values have average multiplicity m in the
        # rare sub-table, then f1/f2 ~= 2/m for a Poisson(m) mixture, so
        # m ~= 2 * f2 / f1.  The number of distinct rare values is then the
        # number of rare rows divided by the average multiplicity, corrected
        # so it is never below what the sample itself witnessed.
        sampling_fraction = rare_rows_in_sample / rare_rows_total
        mean_multiplicity_in_sample = rare_rows_in_sample / distinct_rare_in_sample
        mean_multiplicity = max(
            mean_multiplicity_in_sample, 2.0 * f2 / f1 / max(sampling_fraction, 1e-12)
        )
        # Guard: multiplicity cannot exceed what would place every rare row
        # on a single value, nor fall below 1.
        mean_multiplicity = min(max(mean_multiplicity, 1.0), rare_rows_total)
        rare_estimate = rare_rows_total / mean_multiplicity

    rare_estimate = max(rare_estimate, float(distinct_rare_in_sample))
    estimate = frequent_distinct + rare_estimate
    return min(float(n), max(estimate, float(distinct_in_sample)))
