"""Command-line entry point: ``python -m repro <command>``.

The CLI exposes the library's main flows without writing any code:

* ``demo``      -- the quickstart scenario (CM vs B+Tree vs scan);
* ``advise``    -- run the CM Advisor over one of the bundled data sets;
* ``datasets``  -- describe the bundled synthetic data sets;
* ``experiments`` -- list the paper's tables/figures and the benchmark that
  regenerates each one.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import __version__

_EXPERIMENTS = [
    ("Figure 1", "access patterns of unclustered B+Tree lookups",
     "benchmarks/test_fig1_access_patterns.py"),
    ("Figure 2", "queries accelerated by each clustered attribute (SDSS)",
     "benchmarks/test_fig2_clustering_speedups.py"),
    ("Figure 3", "shipdate IN (...) with correlated vs uncorrelated clustering",
     "benchmarks/test_fig3_shipdate_lookups.py"),
    ("Table 3", "clustered-attribute bucketing granularity vs I/O cost",
     "benchmarks/test_table3_clustered_bucketing.py"),
    ("Table 4", "bucket widths the CM Advisor considers per attribute",
     "benchmarks/test_table4_bucketing_candidates.py"),
    ("Table 5", "CM designs ranked by estimated slowdown vs a B+Tree",
     "benchmarks/test_table5_advisor_designs.py"),
    ("Figure 6", "CM vs secondary B+Tree over Price ranges (eBay)",
     "benchmarks/test_fig6_cm_vs_btree_price.py"),
    ("Figure 7", "bucket level vs runtime and CM size",
     "benchmarks/test_fig7_bucket_level_tradeoff.py"),
    ("Figure 8", "maintenance cost vs number of secondary structures",
     "benchmarks/test_fig8_maintenance.py"),
    ("Figure 9", "mixed INSERT+SELECT workload, 5 B+Trees vs 5 CMs",
     "benchmarks/test_fig9_mixed_workload.py"),
    ("Figure 10", "cost model vs measured CM runtime across c_per_u",
     "benchmarks/test_fig10_cost_model_cperu.py"),
    ("Table 6", "composite CMs vs single CMs vs a composite B+Tree (SDSS)",
     "benchmarks/test_table6_composite_cm.py"),
]

_DATASETS = {
    "ebay": "product catalog; Price soft-determines CATID, CAT1..CAT6 roll it up",
    "tpch": "TPC-H lineitem; shipdate~receiptdate and partkey~suppkey correlations",
    "sdss": "synthetic sky survey; fieldID~objID, (ra, dec)->objID composite correlation",
}


def _run_demo(
    limit: int | None = None,
    join: bool = False,
    analyze: bool = False,
    batch_size: int | None = -1,
    partitions: int | None = None,
) -> int:
    """Inline quickstart (the installable twin of ``examples/quickstart.py``)."""
    import random

    from repro import Aggregate, Between, Database, Equals, Query, WidthBucketer

    rng = random.Random(0)
    rows = []
    for item_id in range(30_000):
        price = rng.uniform(0, 100_000)
        rows.append({"itemid": item_id, "catid": int(price // 500), "price": price})
    if batch_size == -1:
        db = Database(buffer_pool_pages=1_000)
    else:
        # --batch-size 0 runs the row-at-a-time executor; any other value
        # sets the rows-per-batch of the batched executor.
        db = Database(
            buffer_pool_pages=1_000,
            batch_size=None if batch_size == 0 else batch_size,
        )
    db.create_table("items", sample_row=rows[0], tups_per_page=50)
    db.load("items", rows)
    db.cluster("items", "catid", pages_per_bucket=10)
    db.create_secondary_index("items", "price")
    db.create_correlation_map("items", ["price"], bucketers={"price": WidthBucketer(256.0)})
    query = Query.select("items", Between("price", 10_000, 10_800), aggregate=Aggregate.count())
    print("query:", query.describe())
    for method in ("seq_scan", "sorted_index_scan", "cm_scan"):
        result = db.query(query, force=method, cold_cache=True)
        print(
            f"  {method:<20} count={result.value:<5} "
            f"{result.elapsed_ms:8.2f} ms simulated, {result.pages_visited} pages"
        )
    if limit is not None:
        total_pages = db.table("items").num_pages
        limited = Query.select("items", Between("price", 10_000, 10_800), limit=limit)
        print(f"\nstreaming with LIMIT {limit} (table has {total_pages} pages):")
        for method in ("seq_scan", "cm_scan"):
            result = db.run_query(limited, force=method, cold_cache=True)
            print(
                f"  {method:<20} rows={result.rows_matched:<5} "
                f"{result.elapsed_ms:8.2f} ms simulated, "
                f"{result.pages_visited}/{total_pages} pages swept"
            )
    if join:
        categories = [
            {"catid": cat, "label": f"cat-{cat}", "floor": cat * 500.0}
            for cat in range(200)
        ]
        db.create_table("categories", sample_row=categories[0], tups_per_page=50)
        db.load("categories", categories)
        db.cluster("categories", "catid")
        joined = Query.select("items", Between("price", 10_000, 10_800)).join(
            "categories", on="catid"
        )
        print(f"\njoin: {joined.describe()}")
        strategies = (
            "nested_loop_join",
            "index_nested_loop_join",
            "hash_join",
            "sort_merge_join",
        )
        for force_join in strategies:
            result = db.run_query(joined, force_join=force_join, cold_cache=True)
            print(
                f"  {force_join:<23} rows={result.rows_matched:<5} "
                f"{result.elapsed_ms:8.2f} ms simulated, "
                f"{result.pages_visited} pages, {result.join_probes} probes"
            )
        best = db.explain(joined)[0]
        print(f"  planner picks: {best['structure']}")
    if analyze:
        topk = Query.select("items", Between("price", 10_000, 12_000)).order_by(
            "-price"
        ).with_limit(5)
        print(f"\nEXPLAIN ANALYZE {topk.describe()}:")
        print(db.explain_analyze(topk, cold_cache=True))
        grouped = (
            Query.select(
                "items",
                Between("price", 10_000, 12_000),
                aggregate=Aggregate.count(alias="n"),
            )
            .group_by("catid")
            .order_by("-n")
            .with_limit(3)
        )
        print(f"\nEXPLAIN ANALYZE {grouped.describe()}:")
        print(db.explain_analyze(grouped, cold_cache=True))
    if partitions is not None:
        from repro.engine.parallel import FORK_AVAILABLE
        from repro.engine.partition import PartitionSpec

        pdb = Database(buffer_pool_pages=1_000)
        pdb.create_table(
            "items",
            sample_row=rows[0],
            tups_per_page=50,
            partition_by=PartitionSpec.by_hash("catid", partitions),
        )
        pdb.load("items", rows)
        total_pages = db.table("items").num_pages
        pruned = Query.select(
            "items", Equals("catid", 20), aggregate=Aggregate.count()
        )
        print(f"\npartitioned ({partitions}-way hash on catid): {pruned.describe()}")
        flat_result = db.run_query(pruned, force="seq_scan", cold_cache=True)
        part_result = pdb.run_query(pruned, cold_cache=True)
        print(
            f"  unpartitioned scan   {flat_result.pages_visited}/{total_pages} pages, "
            f"{flat_result.elapsed_ms:8.2f} ms simulated"
        )
        print(
            f"  partition pruning    {part_result.pages_visited}/{total_pages} pages, "
            f"{part_result.elapsed_ms:8.2f} ms simulated"
        )
        sweep = Query.select(
            "items",
            Between("price", 10_000, 60_000),
            aggregate=Aggregate.avg("price", alias="avg_price"),
        )
        print(f"\nEXPLAIN ANALYZE {sweep.describe()}:")
        print(pdb.explain_analyze(sweep, cold_cache=True))

        # Partition-wise joins: a co-partitioned build side joins each
        # partition pair independently; a flat build side is broadcast to
        # every partition subtree (or repartitioned -- both are costed).
        cat_rows = [
            {"catid": cat, "label": f"cat-{cat}", "floor": cat * 500.0}
            for cat in range(200)
        ]
        pdb.create_table(
            "cats",
            sample_row=cat_rows[0],
            tups_per_page=50,
            partition_by=PartitionSpec.by_hash("catid", partitions),
        )
        pdb.load("cats", cat_rows)
        pdb.create_table("catsflat", sample_row=cat_rows[0], tups_per_page=50)
        pdb.load("catsflat", cat_rows)
        co_join = Query.select("items", Between("price", 10_000, 60_000)).join(
            "cats", on="catid"
        )
        print(f"\nEXPLAIN ANALYZE {co_join.describe()} (co-partitioned):")
        print(pdb.explain_analyze(co_join, cold_cache=True))
        flat_join = Query.select("items", Between("price", 10_000, 60_000)).join(
            "catsflat", on="catid"
        )
        pdb.enable_repartition = False  # pin the broadcast shape
        print(f"\nEXPLAIN ANALYZE {flat_join.describe()} (broadcast):")
        print(pdb.explain_analyze(flat_join, cold_cache=True))
        pdb.enable_repartition = True
        print("\nflat build side, every costed candidate:")
        for plan in pdb.explain(flat_join):
            print(f"  {plan['estimated_cost_ms']:8.2f} ms est  {plan['structure']}")

        if FORK_AVAILABLE:
            for name, parity_query in (("scan", sweep), ("join", co_join)):
                serial = pdb.run_query(parity_query, cold_cache=True)
                parallel = pdb.run_query(parity_query, cold_cache=True, parallel=2)
                identical = serial.io == parallel.io and (
                    serial.elapsed_ms == parallel.elapsed_ms
                )
                print(
                    f"\nprocess-parallel {name} (2 workers): simulated stats "
                    f"{'bit-identical to serial' if identical else 'DIVERGED'}"
                )
        else:
            print("\nprocess-parallel: skipped (fork start method unavailable)")
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    for name, description in _DATASETS.items():
        print(f"{name:<6} {description}")
    return 0


def _cmd_experiments(_args: argparse.Namespace) -> int:
    for name, description, path in _EXPERIMENTS:
        print(f"{name:<9} {description}")
        print(f"{'':9} -> {path}")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro import CMAdvisor, TableProfile, TrainingQuery
    from repro.bench.harness import (
        SDSS_SEEK_SCALE,
        build_ebay_database,
        build_sdss_rows,
        build_tpch_database,
        scaled_disk_parameters,
    )
    from repro.core.model import HardwareParameters

    if args.dataset == "sdss":
        rows = build_sdss_rows()
        clustered, attributes = "objid", ["fieldid", "mode", "type", "psfmag_g"]
    elif args.dataset == "ebay":
        _db, rows = build_ebay_database()
        clustered, attributes = "catid", ["price", "cat3"]
    else:
        _db, rows = build_tpch_database()
        clustered, attributes = "receiptdate", ["shipdate", "suppkey"]

    advisor = CMAdvisor(
        rows,
        clustered,
        table_profile=TableProfile(total_tups=len(rows), tups_per_page=20, btree_height=2),
        hardware=HardwareParameters.from_disk(scaled_disk_parameters(SDSS_SEEK_SCALE)),
        sample_size=20_000,
    )
    query = TrainingQuery.over_attributes(*attributes)
    print(f"dataset: {args.dataset} ({len(rows)} rows), clustered on {clustered}")
    print(f"training query attributes: {', '.join(attributes)}")
    for row in advisor.design_table(query, limit=args.limit):
        print(f"  {row['runtime']:<6} {row['cm_design']:<40} size {row['size_ratio']}")
    recommendation = advisor.recommend(query)
    if recommendation.recommended is None:
        print("recommendation: build no CM (nothing beats a sequential scan)")
    else:
        chosen = recommendation.recommended
        print(
            f"recommendation: CM({chosen.describe()}) "
            f"~{chosen.estimated_size_bytes / 1024:.0f} KB "
            f"({chosen.size_ratio:.1%} of the B+Tree), slowdown {chosen.slowdown:+.0%}"
        )
    return 0


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be non-negative")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be positive")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Correlation Maps (VLDB 2009) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the quickstart scenario")
    demo.add_argument(
        "--limit",
        type=_non_negative_int,
        default=None,
        help="also run a LIMIT query through the streaming executor",
    )
    demo.add_argument(
        "--join",
        action="store_true",
        help="also run a two-table join (nested-loop vs index-nested-loop)",
    )
    demo.add_argument(
        "--analyze",
        action="store_true",
        help="also EXPLAIN ANALYZE a top-k and a grouped aggregation",
    )
    demo.add_argument(
        "--batch-size",
        type=_non_negative_int,
        default=-1,
        help=(
            "rows per executor batch (0 = row-at-a-time executor; "
            "default: the engine's batch size)"
        ),
    )
    demo.add_argument(
        "--partitions",
        type=_positive_int,
        default=None,
        help=(
            "also demo partitioned storage: an N-way hash-partitioned table, "
            "partition pruning, the exchange plan and parallel parity"
        ),
    )
    demo.set_defaults(
        func=lambda args: _run_demo(
            limit=args.limit,
            join=args.join,
            analyze=args.analyze,
            batch_size=args.batch_size,
            partitions=args.partitions,
        )
    )
    sub.add_parser("datasets", help="describe the bundled data sets").set_defaults(
        func=_cmd_datasets
    )
    sub.add_parser(
        "experiments", help="list the paper's experiments and their benchmarks"
    ).set_defaults(func=_cmd_experiments)

    advise = sub.add_parser("advise", help="run the CM Advisor on a bundled data set")
    advise.add_argument("dataset", choices=sorted(_DATASETS), help="data set to analyse")
    advise.add_argument("--limit", type=int, default=8, help="designs to display")
    advise.set_defaults(func=_cmd_advise)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
