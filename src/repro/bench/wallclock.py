"""Wall-clock benchmarks: batched vs row-at-a-time executor, in real seconds.

Every other benchmark in this repository measures *simulated* milliseconds
-- the paper's disk model, deliberately independent of the host machine.
This module measures the one thing the simulation cannot: the real CPU cost
of driving the interpreter, which is exactly what the batched executor
attacks.  Each scenario plans one query, executes it through both protocols
(``Database.batch_size = None`` vs a real batch size) on the *same* database
instance, verifies that the simulated statistics are bit-identical (rows,
pages, I/O breakdown, simulated elapsed time -- the parity contract of the
batched executor), and then times both modes with best-of-N repeats.

:func:`run_benchmarks` returns the scenario results and
:func:`write_report` persists them as ``BENCH_exec.json`` so the wall-clock
trajectory is tracked across PRs (CI uploads the file as an artifact).

Run from a checkout::

    PYTHONPATH=src python scripts/bench_wallclock.py            # full
    PYTHONPATH=src python scripts/bench_wallclock.py --smoke    # CI smoke
"""

from __future__ import annotations

import json
import platform
import random
import sys
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Sequence

from repro.bench.harness import build_tpch_join_database
from repro.engine.database import Database
from repro.engine.executor import DEFAULT_BATCH_SIZE
from repro.engine.predicates import Between
from repro.engine.query import Aggregate, Query, QueryResult

#: Schema tag written into BENCH_exec.json (bump on layout changes).
REPORT_SCHEMA = "repro-bench-exec/v1"

#: The scenarios the acceptance speedup criterion is asserted on.
FLAGSHIP_SCENARIOS = ("full_scan_aggregate", "unindexed_join")


@dataclass(frozen=True)
class BenchConfig:
    """Knobs shared by every scenario of one benchmark run."""

    #: Multiplier on every scenario's row counts.
    scale: float = 1.0
    #: Timing repeats per mode (best-of-N is reported).
    repeats: int = 3
    #: Rows per batch for the batched mode.
    batch_size: int = DEFAULT_BATCH_SIZE

    @classmethod
    def smoke(cls) -> "BenchConfig":
        """A fast configuration for CI smoke runs (seconds, not minutes)."""
        return cls(scale=0.25, repeats=2)


@dataclass
class ScenarioResult:
    """One scenario's timings plus the parity evidence."""

    name: str
    description: str
    rows_matched: int
    pages_visited: int
    simulated_ms: float
    row_seconds: float
    batched_seconds: float
    speedup: float
    parity_ok: bool


@dataclass(frozen=True)
class _Scenario:
    name: str
    description: str
    database: Database
    query: Query
    run_kwargs: dict[str, Any]


def _build_items_database(scale: float, batch_size: int) -> Database:
    """A single clustered+indexed items table (the scan-shaped scenarios)."""
    rng = random.Random(7)
    rows = []
    for item_id in range(max(1_000, int(60_000 * scale))):
        price = rng.uniform(0, 100_000)
        rows.append({"itemid": item_id, "catid": int(price // 500), "price": price})
    db = Database(buffer_pool_pages=4_000, batch_size=batch_size)
    db.create_table("items", sample_row=rows[0], tups_per_page=50)
    db.load("items", rows)
    db.cluster("items", "catid", pages_per_bucket=10)
    db.create_secondary_index("items", "price")
    return db


def build_scenarios(config: BenchConfig) -> list[_Scenario]:
    """The benchmark suite: scan, filter, join, top-k and group-by shapes."""
    items = _build_items_database(config.scale, config.batch_size)
    join_db, _lineitem, _orders = build_tpch_join_database(
        num_orders=max(500, int(4_000 * config.scale)),
        cluster_orders_on=None,  # unindexed inner: the hash-join workload
    )
    join_db.batch_size = config.batch_size
    return [
        _Scenario(
            "scan_filter",
            "sequential scan with a range filter over every page",
            items,
            Query.select("items", Between("price", 25_000, 75_000)),
            {"force": "seq_scan"},
        ),
        _Scenario(
            "full_scan_aggregate",
            "SUM(price) over the whole table (no filter)",
            items,
            Query.select("items", aggregate=Aggregate.sum("price")),
            {"force": "seq_scan"},
        ),
        _Scenario(
            "unindexed_join",
            "filtered lineitem JOIN orders with an unindexed inner (hash join)",
            join_db,
            Query.select("lineitem", Between("shipdate", 60, 150)).join(
                "orders", on="orderkey"
            ),
            {"force": "seq_scan", "force_join": "hash_join"},
        ),
        _Scenario(
            "top_k",
            "ORDER BY price DESC LIMIT 10 through the bounded k-heap",
            items,
            Query.select("items", Between("price", 0, 100_000))
            .order_by("-price")
            .with_limit(10),
            {"force": "seq_scan"},
        ),
        _Scenario(
            "group_by",
            "COUNT(*) per category via hash aggregation",
            items,
            Query.select("items", aggregate=Aggregate.count(alias="n")).group_by(
                "catid"
            ),
            {"force": "seq_scan"},
        ),
        _Scenario(
            "order_by_full",
            "ORDER BY price DESC without LIMIT (full in-memory sort)",
            items,
            Query.select("items", Between("price", 25_000, 75_000)).order_by(
                "-price"
            ),
            {"force": "seq_scan"},
        ),
        _Scenario(
            "sort_merge_join",
            "filtered lineitem JOIN orders forced through the sort-merge merge",
            join_db,
            Query.select("lineitem", Between("shipdate", 60, 150)).join(
                "orders", on="orderkey"
            ),
            {"force": "seq_scan", "force_join": "sort_merge_join"},
        ),
    ]


def _time_best(run: Callable[[], Any], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def run_scenario(scenario: _Scenario, config: BenchConfig) -> ScenarioResult:
    """Execute one scenario in both modes: parity check, then timings.

    Every run is cold-cache (the paper's methodology), so the simulated
    statistics of the two modes are directly comparable -- and asserted
    equal before any timing is taken.
    """
    db = scenario.database

    def run(batched: bool) -> QueryResult:
        db.batch_size = config.batch_size if batched else None
        # Park the simulated disk head at a known position so the first
        # read of every run classifies identically, whatever ran before.
        db.reset_measurements()
        return db.run_query(scenario.query, cold_cache=True, **scenario.run_kwargs)

    row_result = run(False)
    batched_result = run(True)
    parity_ok = (
        row_result.rows_matched == batched_result.rows_matched
        and row_result.value == batched_result.value
        and row_result.pages_visited == batched_result.pages_visited
        and row_result.rows_examined == batched_result.rows_examined
        and row_result.join_probes == batched_result.join_probes
        and row_result.io == batched_result.io
        and abs(row_result.elapsed_ms - batched_result.elapsed_ms) < 1e-9
    )
    row_seconds = _time_best(lambda: run(False), config.repeats)
    batched_seconds = _time_best(lambda: run(True), config.repeats)
    db.batch_size = config.batch_size
    return ScenarioResult(
        name=scenario.name,
        description=scenario.description,
        rows_matched=row_result.rows_matched,
        pages_visited=row_result.pages_visited,
        simulated_ms=row_result.elapsed_ms,
        row_seconds=row_seconds,
        batched_seconds=batched_seconds,
        speedup=row_seconds / batched_seconds if batched_seconds > 0 else float("inf"),
        parity_ok=parity_ok,
    )


def run_benchmarks(
    config: BenchConfig | None = None,
    *,
    names: Sequence[str] | None = None,
) -> list[ScenarioResult]:
    """Run the wall-clock suite (optionally a named subset)."""
    config = config or BenchConfig()
    results = []
    for scenario in build_scenarios(config):
        if names is not None and scenario.name not in names:
            continue
        results.append(run_scenario(scenario, config))
    return results


def build_report(
    results: Sequence[ScenarioResult], config: BenchConfig
) -> dict[str, Any]:
    """The BENCH_exec.json payload for one finished run."""
    flagship = {
        result.name: round(result.speedup, 2)
        for result in results
        if result.name in FLAGSHIP_SCENARIOS
    }
    return {
        "schema": REPORT_SCHEMA,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "config": asdict(config),
        "scenarios": {result.name: asdict(result) for result in results},
        "summary": {
            "parity_ok": all(result.parity_ok for result in results),
            "min_speedup": round(min(result.speedup for result in results), 2)
            if results
            else None,
            "flagship_speedups": flagship,
        },
    }


def write_report(
    results: Sequence[ScenarioResult], config: BenchConfig, path: str
) -> dict[str, Any]:
    """Serialise :func:`build_report` to ``path``; returns the payload."""
    report = build_report(results, config)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def format_results(results: Sequence[ScenarioResult]) -> str:
    """A fixed-width table of one run's results (for terminals and CI logs)."""
    header = (
        f"{'scenario':<20} {'rows':>8} {'pages':>7} {'sim ms':>9} "
        f"{'row s':>9} {'batch s':>9} {'speedup':>8} {'parity':>7}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        lines.append(
            f"{result.name:<20} {result.rows_matched:>8} {result.pages_visited:>7} "
            f"{result.simulated_ms:>9.1f} {result.row_seconds:>9.4f} "
            f"{result.batched_seconds:>9.4f} {result.speedup:>7.2f}x "
            f"{'ok' if result.parity_ok else 'FAIL':>7}"
        )
    return "\n".join(lines)
