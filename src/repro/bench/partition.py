"""Partitioning benchmarks: pruning page savings and parallel-scan speedup.

Two claims of the partitioned-storage layer are measured here, one in
simulated units and one in real seconds:

* **Pruning** -- a partition-key predicate over an N-way partitioned table
  must read a fraction of the physical pages the unpartitioned scan reads
  (``pruned_scan``: at most :data:`PRUNING_PAGE_RATIO_FLOOR` of them for
  the 8-way default), with identical result rows.  Pages are simulated, so
  this gate is machine-independent.
* **Parallelism** -- executing the per-partition scan subtrees on a
  ``multiprocessing`` fork pool must beat the serial exchange on wall
  clock for full-scan shapes (``*_parallel`` scenarios), while every
  simulated statistic stays bit-identical to the serial run (the parity
  contract of :mod:`repro.engine.parallel`).  Wall clock is
  machine-dependent: the :data:`PARALLEL_SPEEDUP_FLOOR` acceptance floor
  is only meaningful on runners with at least
  :data:`MIN_CORES_FOR_FLOOR` cores, and ``scripts/bench_partition.py
  --check`` skips it (loudly) below that.

Run from a checkout::

    PYTHONPATH=src python scripts/bench_partition.py            # full
    PYTHONPATH=src python scripts/bench_partition.py --smoke    # CI smoke
"""

from __future__ import annotations

import json
import math
import os
import platform
import random
import sys
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Sequence

from repro.engine.database import Database
from repro.engine.executor import DEFAULT_BATCH_SIZE
from repro.engine.parallel import FORK_AVAILABLE
from repro.engine.partition import PartitionSpec
from repro.engine.predicates import Equals
from repro.engine.query import Aggregate, Query, QueryResult

#: Schema tag written into BENCH_partition.json (bump on layout changes).
REPORT_SCHEMA = "repro-bench-partition/v2"

#: Acceptance: partition-key scan over the 8-way table reads at most this
#: fraction of the unpartitioned scan's physical pages.
PRUNING_PAGE_RATIO_FLOOR = 0.25

#: Acceptance: parallel full-scan-aggregate beats serial by at least this
#: factor -- asserted only on runners with enough cores.
PARALLEL_SPEEDUP_FLOOR = 2.0

#: Minimum ``os.cpu_count()`` for the wall-clock floor to be meaningful.
MIN_CORES_FOR_FLOOR = 4

#: The scenario whose speedup the acceptance floor reads.
FLAGSHIP_SCENARIO = "full_scan_aggregate_parallel"

#: The partition-wise join scenario: the same wall-clock floor applies on
#: runners with enough cores (the PR 10 acceptance criterion).
JOIN_SCENARIO = "co_partitioned_join_parallel"

#: Partitioned ORDER BY + LIMIT via per-partition top-k and a streaming
#: k-way merge, against the flat single-sort baseline.
ORDERED_MERGE_SCENARIO = "ordered_limit_merge"

#: Acceptance: the merge path's *simulated* cost must not regress past the
#: flat sort's by more than this factor.  Simulated milliseconds are
#: machine-independent, so unlike the wall-clock floors this gate holds on
#: any runner.  The budget covers the fixed cost of partitioned *storage*
#: (one seek per partition stream, per-partition heaps rounding up to
#: whole pages -- about 6% on the 8-way default), not the merge: the
#: per-partition top-k does the same comparison work as the flat top-k and
#: the k-way merge only touches the k survivors.  Sorting the concatenated
#: partition streams instead would pay the same storage overhead *plus* a
#: full-input sort, so a ratio inside this floor shows the merge path is
#: doing its job.
MERGE_SIMULATED_RATIO_FLOOR = 1.10

#: Below this flagship serial wall clock the floor is vacuous: pool
#: startup (tens of milliseconds) swamps any speedup the workers could
#: show, whatever the core count -- ``--check`` skips the floor loudly.
MIN_SERIAL_SECONDS = 0.05


def _revenue(row: dict[str, Any]) -> float:
    """A deliberately CPU-heavy per-row expression: installment revenue.

    Discounted price paid off over a 12-period installment schedule with a
    tiered per-period carrying charge.  The point is the *shape*, not the
    finance: a per-row Python callable makes the aggregate interpreter-
    bound (the simulated disk model charges nothing for expression CPU),
    which is exactly the workload process-parallel scans attack -- and the
    workload the wall-clock floor is calibrated against.
    """
    price = float(row["price"])
    balance = price * (1.0 - float(row["discount"]))
    if price >= 50_000.0:
        rate = 0.012
    elif price >= 10_000.0:
        rate = 0.009
    else:
        rate = 0.007
    collected = 0.0
    for _period in range(12):
        payment = balance / 6.0 + balance * rate
        if payment > balance:
            payment = balance
        balance -= payment
        collected += payment
        if balance <= 0.005:
            break
    return collected + balance


@dataclass(frozen=True)
class PartitionBenchConfig:
    """Knobs shared by every scenario of one benchmark run."""

    #: Multiplier on the row count.
    scale: float = 1.0
    #: Timing repeats per mode (best-of-N is reported).
    repeats: int = 3
    #: Number of partitions of the partitioned copy of the table.
    partitions: int = 8
    #: Fork-pool size for the parallel runs (``None``: one per core, capped
    #: at the partition count).
    workers: int | None = None
    #: Rows per batch for both databases.
    batch_size: int = DEFAULT_BATCH_SIZE

    @classmethod
    def smoke(cls) -> "PartitionBenchConfig":
        """The CI configuration: fewer repeats, but the *full* row count.

        Unlike the executor bench, shrinking the data here would defeat the
        point: the parallel wall-clock floor is only meaningful when the
        serial run is long enough to amortise fork-pool startup
        (:data:`MIN_SERIAL_SECONDS`), so the smoke saves time on repeats,
        not on rows.
        """
        return cls(repeats=2)

    def effective_workers(self) -> int:
        if self.workers is not None:
            return max(1, self.workers)
        return max(2, min(os.cpu_count() or 1, self.partitions))


@dataclass
class PartitionScenarioResult:
    """One scenario's evidence: simulated page counts and/or wall clock."""

    name: str
    description: str
    rows_matched: int
    #: Physical pages read by the unpartitioned baseline / the partitioned
    #: plan (simulated, cold cache).
    pages_unpartitioned: int
    pages_partitioned: int
    #: ``pages_partitioned / pages_unpartitioned`` (the pruning evidence).
    page_ratio: float
    #: Wall clock of the serial and parallel partitioned runs (``None``
    #: for pruning-only scenarios).
    serial_seconds: float | None
    parallel_seconds: float | None
    speedup: float | None
    parity_ok: bool
    #: Wall clock of the flat (unpartitioned) baseline, where a scenario
    #: times it (the ordered-merge comparison); ``None`` elsewhere.
    flat_seconds: float | None = None
    #: Simulated elapsed milliseconds of the flat baseline and the
    #: partitioned plan -- machine-independent cost evidence (``None`` for
    #: scenarios that do not gate on it).
    simulated_ms_flat: float | None = None
    simulated_ms_partitioned: float | None = None


def _build_pair(config: PartitionBenchConfig) -> tuple[Database, Database]:
    """The same items + cats tables twice: single-heap and hash-partitioned.

    In the partitioned database ``cats`` is co-partitioned with ``items``
    on ``catid``, so the join scenario plans the co-partitioned shape.
    """
    rng = random.Random(7)
    rows = []
    for item_id in range(max(2_000, int(200_000 * config.scale))):
        price = rng.uniform(0, 100_000)
        rows.append(
            {
                "itemid": item_id,
                "catid": rng.randrange(64),
                "price": price,
                "discount": rng.uniform(0.0, 0.1),
            }
        )
    cats = [
        {"catid": c, "label": f"cat{c}", "region": f"r{c % 5}"} for c in range(64)
    ]
    flat = Database(buffer_pool_pages=4_000, batch_size=config.batch_size)
    flat.create_table("items", sample_row=rows[0], tups_per_page=50)
    flat.load("items", rows)
    flat.create_table("cats", sample_row=cats[0], tups_per_page=50)
    flat.load("cats", cats)
    parted = Database(buffer_pool_pages=4_000, batch_size=config.batch_size)
    parted.create_table(
        "items",
        sample_row=rows[0],
        tups_per_page=50,
        partition_by=PartitionSpec.by_hash("catid", config.partitions),
    )
    parted.load("items", rows)
    parted.create_table(
        "cats",
        sample_row=cats[0],
        tups_per_page=50,
        partition_by=PartitionSpec.by_hash("catid", config.partitions),
    )
    parted.load("cats", cats)
    return flat, parted


def _row_key(result: QueryResult) -> list[tuple[tuple[str, Any], ...]]:
    return sorted(tuple(sorted(row.items())) for row in result.rows)


def _signature(result: QueryResult) -> tuple[Any, ...]:
    """Every *counter* the serial/parallel parity contract pins bit-exactly.

    Aggregate values are compared separately via :func:`_values_agree`:
    float sums may drift in the last ulps across fold orders.
    """
    return (
        result.rows_examined,
        result.rows_matched,
        result.rows_emitted,
        result.pages_visited,
        result.join_probes,
        result.io,
        result.elapsed_ms,
    )


def _values_agree(base: Any, other: Any) -> bool:
    """Aggregate equality across *different storage layouts*.

    Partitioning reorders the rows a float sum folds over, so the
    unpartitioned and partitioned values may differ in the last ulps
    (exactly the parallel-aggregate caveat real engines document).  The
    bit-identical contract applies between serial and parallel runs of the
    *same* partitioned layout; across layouts floats get a relative
    tolerance.
    """
    if isinstance(base, float) and isinstance(other, float):
        return math.isclose(base, other, rel_tol=1e-9, abs_tol=1e-9)
    return bool(base == other)


def _rows_agree(base: QueryResult, other: QueryResult) -> bool:
    """Result rows equal, with float tolerance per value (group sums)."""
    left, right = _row_key(base), _row_key(other)
    if len(left) != len(right):
        return False
    for row_a, row_b in zip(left, right):
        if len(row_a) != len(row_b):
            return False
        for (key_a, value_a), (key_b, value_b) in zip(row_a, row_b):
            if key_a != key_b or not _values_agree(value_a, value_b):
                return False
    return True


def _time_best(run: Callable[[], Any], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _cold_run(
    db: Database, query: Query, *, parallel: int | None = None
) -> QueryResult:
    db.reset_measurements()
    return db.run_query(query, cold_cache=True, parallel=parallel)


def _pruned_scan(
    flat: Database, parted: Database, config: PartitionBenchConfig
) -> PartitionScenarioResult:
    query = Query.select("items", Equals("catid", 7))
    base = _cold_run(flat, query)
    part = _cold_run(parted, query)
    return PartitionScenarioResult(
        name="pruned_scan",
        description=(
            "partition-key equality predicate: pruning vs the full-table scan"
        ),
        rows_matched=part.rows_matched,
        pages_unpartitioned=base.io.pages_read,
        pages_partitioned=part.io.pages_read,
        page_ratio=part.io.pages_read / max(1, base.io.pages_read),
        serial_seconds=None,
        parallel_seconds=None,
        speedup=None,
        parity_ok=_row_key(base) == _row_key(part),
    )


def _parallel_scenario(
    name: str,
    description: str,
    flat: Database,
    parted: Database,
    query: Query,
    config: PartitionBenchConfig,
) -> PartitionScenarioResult:
    workers = config.effective_workers()
    base = _cold_run(flat, query)
    serial = _cold_run(parted, query)
    parallel = _cold_run(parted, query, parallel=workers)
    parity_ok = (
        _signature(serial) == _signature(parallel)
        and _rows_agree(serial, parallel)
        and _values_agree(serial.value, parallel.value)
        and _values_agree(base.value, serial.value)
        and _rows_agree(base, serial)
    )
    serial_seconds = _time_best(lambda: _cold_run(parted, query), config.repeats)
    parallel_seconds = _time_best(
        lambda: _cold_run(parted, query, parallel=workers), config.repeats
    )
    return PartitionScenarioResult(
        name=name,
        description=description,
        rows_matched=serial.rows_matched,
        pages_unpartitioned=base.io.pages_read,
        pages_partitioned=serial.io.pages_read,
        page_ratio=serial.io.pages_read / max(1, base.io.pages_read),
        serial_seconds=serial_seconds,
        parallel_seconds=parallel_seconds,
        speedup=serial_seconds / parallel_seconds
        if parallel_seconds > 0
        else float("inf"),
        parity_ok=parity_ok,
    )


def _ordered_merge_scenario(
    flat: Database, parted: Database, config: PartitionBenchConfig
) -> PartitionScenarioResult:
    """ORDER BY + LIMIT: per-partition top-k and a k-way merge vs one sort.

    The ordering ends in the unique ``itemid``, so it is total and all
    three runs (flat, partitioned serial, partitioned parallel) must
    return *exactly* the same rows in the same order.
    """
    query = Query.select("items", order_by=["-price", "itemid"], limit=100)
    workers = config.effective_workers()
    base = _cold_run(flat, query)
    serial = _cold_run(parted, query)
    parallel = _cold_run(parted, query, parallel=workers)
    parity_ok = (
        _signature(serial) == _signature(parallel)
        and serial.rows == parallel.rows
        and serial.rows == base.rows
    )
    flat_seconds = _time_best(lambda: _cold_run(flat, query), config.repeats)
    serial_seconds = _time_best(lambda: _cold_run(parted, query), config.repeats)
    parallel_seconds = _time_best(
        lambda: _cold_run(parted, query, parallel=workers), config.repeats
    )
    return PartitionScenarioResult(
        name=ORDERED_MERGE_SCENARIO,
        description=(
            "ORDER BY price DESC LIMIT 100: per-partition top-k + streaming "
            "k-way merge vs the flat single sort"
        ),
        rows_matched=serial.rows_matched,
        pages_unpartitioned=base.io.pages_read,
        pages_partitioned=serial.io.pages_read,
        page_ratio=serial.io.pages_read / max(1, base.io.pages_read),
        serial_seconds=serial_seconds,
        parallel_seconds=parallel_seconds,
        speedup=serial_seconds / parallel_seconds
        if parallel_seconds > 0
        else float("inf"),
        parity_ok=parity_ok,
        flat_seconds=flat_seconds,
        simulated_ms_flat=base.elapsed_ms,
        simulated_ms_partitioned=serial.elapsed_ms,
    )


def run_benchmarks(
    config: PartitionBenchConfig | None = None,
    *,
    names: Sequence[str] | None = None,
) -> list[PartitionScenarioResult]:
    """Run the partition suite (optionally a named subset)."""
    config = config or PartitionBenchConfig()
    flat, parted = _build_pair(config)
    scenarios: list[tuple[str, Callable[[], PartitionScenarioResult]]] = [
        ("pruned_scan", lambda: _pruned_scan(flat, parted, config)),
        (
            "full_scan_aggregate_parallel",
            lambda: _parallel_scenario(
                "full_scan_aggregate_parallel",
                "SUM(price * (1 - discount)) over every partition on the "
                "fork pool (per-row Python expression: CPU-bound)",
                flat,
                parted,
                Query.select(
                    "items", aggregate=Aggregate.sum(_revenue, alias="revenue")
                ),
                config,
            ),
        ),
        (
            "group_by_parallel",
            lambda: _parallel_scenario(
                "group_by_parallel",
                "COUNT(*) per category, partition-wise on the fork pool",
                flat,
                parted,
                Query.select("items", aggregate=Aggregate.count(alias="n")).group_by(
                    "catid"
                ),
                config,
            ),
        ),
        (
            JOIN_SCENARIO,
            lambda: _parallel_scenario(
                JOIN_SCENARIO,
                "SUM(revenue) over items JOIN cats ON catid, partition-wise "
                "with the co-partitioned build side, on the fork pool",
                flat,
                parted,
                Query.select(
                    "items", aggregate=Aggregate.sum(_revenue, alias="revenue")
                ).join("cats", "catid"),
                config,
            ),
        ),
        (
            ORDERED_MERGE_SCENARIO,
            lambda: _ordered_merge_scenario(flat, parted, config),
        ),
    ]
    results = []
    for name, build in scenarios:
        if names is not None and name not in names:
            continue
        results.append(build())
    return results


def build_report(
    results: Sequence[PartitionScenarioResult], config: PartitionBenchConfig
) -> dict[str, Any]:
    """The BENCH_partition.json payload for one finished run."""
    by_name = {result.name: result for result in results}
    pruning = by_name.get("pruned_scan")
    flagship = by_name.get(FLAGSHIP_SCENARIO)
    join = by_name.get(JOIN_SCENARIO)
    merge = by_name.get(ORDERED_MERGE_SCENARIO)
    merge_ratio = None
    if merge is not None and merge.simulated_ms_flat:
        merge_ratio = round(
            merge.simulated_ms_partitioned / merge.simulated_ms_flat, 4
        )
    return {
        "schema": REPORT_SCHEMA,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "fork_available": FORK_AVAILABLE,
        "config": asdict(config),
        "workers": config.effective_workers(),
        "scenarios": {result.name: asdict(result) for result in results},
        "summary": {
            "parity_ok": all(result.parity_ok for result in results),
            "pruning_page_ratio": round(pruning.page_ratio, 4) if pruning else None,
            "parallel_speedup": round(flagship.speedup, 2)
            if flagship and flagship.speedup is not None
            else None,
            "join_speedup": round(join.speedup, 2)
            if join and join.speedup is not None
            else None,
            "merge_simulated_ratio": merge_ratio,
        },
    }


def write_report(
    results: Sequence[PartitionScenarioResult],
    config: PartitionBenchConfig,
    path: str,
) -> dict[str, Any]:
    """Serialise :func:`build_report` to ``path``; returns the payload."""
    report = build_report(results, config)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def format_results(results: Sequence[PartitionScenarioResult]) -> str:
    """A fixed-width table of one run's results (for terminals and CI logs)."""
    header = (
        f"{'scenario':<28} {'rows':>8} {'pg flat':>8} {'pg part':>8} "
        f"{'ratio':>6} {'serial s':>9} {'paral s':>9} {'speedup':>8} {'parity':>7}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        serial = f"{result.serial_seconds:.4f}" if result.serial_seconds else "-"
        par = f"{result.parallel_seconds:.4f}" if result.parallel_seconds else "-"
        speed = f"{result.speedup:.2f}x" if result.speedup else "-"
        lines.append(
            f"{result.name:<28} {result.rows_matched:>8} "
            f"{result.pages_unpartitioned:>8} {result.pages_partitioned:>8} "
            f"{result.page_ratio:>6.3f} {serial:>9} {par:>9} {speed:>8} "
            f"{'ok' if result.parity_ok else 'FAIL':>7}"
        )
    return "\n".join(lines)
