"""Concurrent-serving benchmark: interleaved readers over one buffer pool.

The cooperative :class:`~repro.engine.scheduler.QueryScheduler` advances
many queries one batch quantum at a time over the *shared* buffer pool.
When several scan-shaped readers sweep the same table, interleaving keeps
them adjacent in scan position, so one query's physical page read serves
the others from cache -- whereas running the same queries serially against
a pool smaller than the table re-reads every page per query (LRU evicts the
head of the table just before the next query wants it).  The table here is
deliberately built ~4x larger than the pool to expose exactly that effect.

Two scenarios are measured, both in *simulated* time (the paper's disk
model, host-independent):

``readers``
    Eight identical full-table ``COUNT(*)`` range scans, serial vs
    scheduled.  Both modes do the same logical work (equal pages visited);
    the report records aggregate throughput (queries per simulated second),
    per-query p50/p95/p99 latency, and the physical reads that explain the
    gap.  The acceptance check asserts >= 2x aggregate throughput.

``mixed``
    The :func:`~repro.datasets.workloads.concurrent_mixed_workload` mix:
    readers admitted to the scheduler while snapshot-isolated writer
    transactions commit between scheduling quanta.  Every reader must
    report the row count of its *admission snapshot* -- concurrent commits
    must not leak into a running scan -- which the harness verifies before
    reporting reader latencies and writer throughput.

Results are persisted as ``BENCH_concurrent.json`` (CI uploads the file and
runs ``scripts/bench_concurrent.py --smoke --check``).
"""

from __future__ import annotations

import json
import platform
import random
import sys
import time
from dataclasses import asdict, dataclass
from typing import Any, Sequence

from repro.datasets.workloads import concurrent_mixed_workload
from repro.engine.database import Database
from repro.engine.predicates import Between
from repro.engine.query import Query
from repro.engine.scheduler import QueryScheduler

#: Schema tag written into BENCH_concurrent.json (bump on layout changes).
REPORT_SCHEMA = "repro-bench-concurrent/v1"

#: The acceptance floor: scheduled readers must beat serial execution by
#: at least this aggregate-throughput factor (at equal logical page reads).
THROUGHPUT_FLOOR = 2.0


@dataclass(frozen=True)
class ConcurrentConfig:
    """Knobs of one concurrent-benchmark run."""

    #: Rows in the items table; at ``tups_per_page=50`` the default builds
    #: a 1200-page heap against a 300-page pool (the 4x thrash ratio).
    rows: int = 60_000
    tups_per_page: int = 50
    buffer_pool_pages: int = 300
    batch_size: int = 256
    readers: int = 8
    writer_batches: int = 4
    rows_per_writer_batch: int = 100
    seed: int = 7

    @classmethod
    def smoke(cls) -> "ConcurrentConfig":
        """A fast configuration for CI smoke runs (same pool/table ratio)."""
        return cls(rows=12_000, buffer_pool_pages=60, writer_batches=2)


@dataclass
class ReadersResult:
    """The serial-vs-scheduled comparison of the identical-readers scenario."""

    queries: int
    pages_visited_serial: int
    pages_visited_concurrent: int
    physical_reads_serial: int
    physical_reads_concurrent: int
    serial_ms: float
    concurrent_ms: float
    serial_qps: float
    concurrent_qps: float
    throughput_ratio: float
    serial_latency_ms: dict[str, float]
    concurrent_latency_ms: dict[str, float]
    wall_seconds: float


@dataclass
class MixedResult:
    """The reader/writer scenario: isolation verified, then the numbers."""

    readers: int
    writer_batches: int
    rows_written: int
    snapshot_counts_ok: bool
    reader_latency_ms: dict[str, float]
    writer_ms: float
    writer_rows_per_s: float
    total_ms: float
    wall_seconds: float


def percentiles(values: Sequence[float], points: Sequence[int] = (50, 95, 99)) -> dict[str, float]:
    """Nearest-rank percentiles of ``values`` keyed as ``"p50"`` etc."""
    if not values:
        return {f"p{point}": 0.0 for point in points}
    ordered = sorted(values)
    out = {}
    for point in points:
        rank = max(0, -(-point * len(ordered) // 100) - 1)
        out[f"p{point}"] = round(ordered[rank], 3)
    return out


def build_database(config: ConcurrentConfig) -> Database:
    """The benchmark table: a heap ~4x the buffer pool, clustered on catid."""
    rng = random.Random(config.seed)
    rows = []
    for item_id in range(config.rows):
        price = rng.uniform(0, 100_000)
        rows.append({"itemid": item_id, "catid": int(price // 500), "price": price})
    db = Database(
        buffer_pool_pages=config.buffer_pool_pages, batch_size=config.batch_size
    )
    db.create_table("items", sample_row=rows[0], tups_per_page=config.tups_per_page)
    db.load("items", rows)
    db.cluster("items", "catid", pages_per_bucket=10)
    return db


#: Columns the benchmark readers materialise (bounds the held row memory).
READER_PROJECTION = ("itemid",)


def _reader_query(name: str) -> Query:
    # A streaming range scan, NOT an aggregate: a scalar aggregate is a
    # blocking operator that drains its whole input inside one batch pull,
    # which would leave the scheduler nothing to interleave.
    return Query.select("items", Between("price", 0, 100_000), name=name)


def run_readers_scenario(config: ConcurrentConfig) -> ReadersResult:
    """Serial vs scheduled execution of N identical full-scan readers."""
    db = build_database(config)
    queries = [_reader_query(f"serial_{i}") for i in range(config.readers)]
    started = time.perf_counter()

    # Serial: one cold start, then queries back to back -- the pool is
    # smaller than the table, so each query still re-reads every page.
    db.reset_measurements()
    db.drop_caches()
    serial_results = []
    serial_latencies = []
    for query in queries:
        result = db.run_query(query, force="seq_scan", projection=READER_PROJECTION)
        serial_results.append(result)
        serial_latencies.append(result.elapsed_ms)
    serial_ms = db.elapsed_ms()
    serial_pages = sum(result.pages_visited for result in serial_results)
    serial_physical = sum(result.io.pages_read for result in serial_results)

    # Scheduled: identical queries and cold start; the scheduler interleaves
    # them batch by batch so they share the pool instead of fighting it.
    db.reset_measurements()
    db.drop_caches()
    scheduler = QueryScheduler(db, max_concurrent=config.readers, policy="fair")
    for i in range(config.readers):
        scheduler.submit(
            _reader_query(f"reader_{i}"),
            force="seq_scan",
            projection=READER_PROJECTION,
        )
    scheduled = scheduler.run()
    concurrent_ms = db.elapsed_ms()
    concurrent_pages = sum(entry.result.pages_visited for entry in scheduled)
    concurrent_physical = sum(entry.result.io.pages_read for entry in scheduled)
    concurrent_latencies = [entry.latency_ms for entry in scheduled]

    expected = serial_results[0].rows_matched
    for entry in scheduled:
        if entry.result.rows_matched != expected:
            raise AssertionError(
                f"scheduled reader {entry.label} matched "
                f"{entry.result.rows_matched} rows, serial execution matched "
                f"{expected}"
            )

    serial_qps = config.readers / (serial_ms / 1000.0)
    concurrent_qps = config.readers / (concurrent_ms / 1000.0)
    return ReadersResult(
        queries=config.readers,
        pages_visited_serial=serial_pages,
        pages_visited_concurrent=concurrent_pages,
        physical_reads_serial=serial_physical,
        physical_reads_concurrent=concurrent_physical,
        serial_ms=round(serial_ms, 3),
        concurrent_ms=round(concurrent_ms, 3),
        serial_qps=round(serial_qps, 3),
        concurrent_qps=round(concurrent_qps, 3),
        throughput_ratio=round(concurrent_qps / serial_qps, 3),
        serial_latency_ms=percentiles(serial_latencies),
        concurrent_latency_ms=percentiles(concurrent_latencies),
        wall_seconds=round(time.perf_counter() - started, 3),
    )


def run_mixed_scenario(config: ConcurrentConfig) -> MixedResult:
    """Readers under pinned snapshots while writer transactions commit."""
    db = build_database(config)
    steps = concurrent_mixed_workload(
        [dict(row) for row in db.table("items").all_rows()],
        num_readers=config.readers,
        num_writer_batches=config.writer_batches,
        rows_per_writer_batch=config.rows_per_writer_batch,
        seed=config.seed,
    )
    started = time.perf_counter()
    db.reset_measurements()
    db.drop_caches()
    scheduler = QueryScheduler(db, max_concurrent=config.readers, policy="fair")
    expected_counts: dict[str, int] = {}
    entries = []
    rows_written = 0
    writer_ms = 0.0
    live_rows = config.rows
    for kind, payload in steps:
        if kind == "read":
            entry = scheduler.submit(
                payload,
                label=payload.name,
                force="seq_scan",
                projection=READER_PROJECTION,
            )
            # The count this reader must report: the live rows at admission.
            expected_counts[entry.label] = live_rows
            entries.append(entry)
            # Let the scheduler make progress between submissions so writers
            # land mid-scan for the already-running readers.
            for _ in range(4):
                scheduler.step()
        else:
            before = db.elapsed_ms()
            transaction = db.begin_transaction()
            db.tx_insert(transaction, "items", payload)
            transaction.commit()
            writer_ms += db.elapsed_ms() - before
            rows_written += len(payload)
            live_rows += len(payload)
    scheduler.run()
    total_ms = db.elapsed_ms()

    counts_ok = all(
        entry.result.rows_matched == expected_counts[entry.label]
        for entry in entries
    )
    reader_latencies = [entry.latency_ms for entry in entries]
    return MixedResult(
        readers=config.readers,
        writer_batches=config.writer_batches,
        rows_written=rows_written,
        snapshot_counts_ok=counts_ok,
        reader_latency_ms=percentiles(reader_latencies),
        writer_ms=round(writer_ms, 3),
        writer_rows_per_s=round(rows_written / (writer_ms / 1000.0), 1)
        if writer_ms > 0
        else float("inf"),
        total_ms=round(total_ms, 3),
        wall_seconds=round(time.perf_counter() - started, 3),
    )


def run_benchmarks(config: ConcurrentConfig | None = None) -> dict[str, Any]:
    """Run both scenarios and return the BENCH_concurrent.json payload."""
    config = config or ConcurrentConfig()
    readers = run_readers_scenario(config)
    mixed = run_mixed_scenario(config)
    return {
        "schema": REPORT_SCHEMA,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "config": asdict(config),
        "readers": asdict(readers),
        "mixed": asdict(mixed),
        "summary": {
            "throughput_ratio": readers.throughput_ratio,
            "equal_logical_pages": readers.pages_visited_serial
            == readers.pages_visited_concurrent,
            "snapshot_counts_ok": mixed.snapshot_counts_ok,
        },
    }


def check_report(report: dict[str, Any]) -> list[str]:
    """The acceptance assertions; returns a list of failures (empty = pass)."""
    failures = []
    summary = report["summary"]
    if not summary["equal_logical_pages"]:
        failures.append(
            "serial and scheduled readers visited different logical page counts: "
            f"{report['readers']['pages_visited_serial']} vs "
            f"{report['readers']['pages_visited_concurrent']}"
        )
    if summary["throughput_ratio"] < THROUGHPUT_FLOOR:
        failures.append(
            f"aggregate throughput ratio {summary['throughput_ratio']}x is below "
            f"the {THROUGHPUT_FLOOR}x floor"
        )
    if not summary["snapshot_counts_ok"]:
        failures.append(
            "a reader in the mixed scenario saw a count from outside its snapshot"
        )
    return failures


def write_report(report: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_report(report: dict[str, Any]) -> str:
    """A terminal-friendly summary of one finished run."""
    readers = report["readers"]
    mixed = report["mixed"]
    lines = [
        f"readers: {readers['queries']} full scans over "
        f"{report['config']['rows']} rows "
        f"(pool {report['config']['buffer_pool_pages']} pages)",
        f"  serial:     {readers['serial_ms']:>10.1f} sim ms  "
        f"{readers['serial_qps']:>8.2f} q/s  "
        f"physical reads {readers['physical_reads_serial']}",
        f"  scheduled:  {readers['concurrent_ms']:>10.1f} sim ms  "
        f"{readers['concurrent_qps']:>8.2f} q/s  "
        f"physical reads {readers['physical_reads_concurrent']}",
        f"  throughput ratio: {readers['throughput_ratio']}x "
        f"(floor {THROUGHPUT_FLOOR}x), latencies p50/p95/p99: "
        f"serial {readers['serial_latency_ms']} vs "
        f"scheduled {readers['concurrent_latency_ms']}",
        f"mixed: {mixed['readers']} readers + {mixed['writer_batches']} writer "
        f"batches ({mixed['rows_written']} rows)",
        f"  snapshot counts ok: {mixed['snapshot_counts_ok']}, reader latency "
        f"{mixed['reader_latency_ms']}, writers {mixed['writer_rows_per_s']} rows/s",
    ]
    return "\n".join(lines)
