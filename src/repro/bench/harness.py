"""Scaled builders for the benchmark databases.

The paper's experiments run over multi-gigabyte tables on a real disk; this
reproduction replaces the disk with the simulated cost model and scales the
row counts down so every benchmark finishes in seconds.  The *shape* of each
result (who wins, by roughly what factor, where the crossovers fall) is
preserved because the simulated disk charges the paper's own per-page costs.

Set the ``REPRO_SCALE`` environment variable (default ``1.0``) to grow or
shrink every data set, e.g. ``REPRO_SCALE=4 pytest benchmarks/`` for a run
four times closer to paper scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

from repro.core.bucketing import WidthBucketer
from repro.datasets.ebay import EbayConfig, generate_items
from repro.datasets.sdss import SDSSConfig, generate_photoobj
from repro.datasets.tpch import TPCHConfig, generate_lineitem, generate_orders
from repro.engine.database import Database
from repro.storage.disk import DiskParameters

#: Environment variable controlling the size of every benchmark data set.
SCALE_ENV_VAR = "REPRO_SCALE"


def scaled_disk_parameters(seek_scale: float) -> DiskParameters:
    """Disk parameters with the seek cost scaled down by ``seek_scale``.

    The benchmark tables are 10x-500x smaller than the paper's, but a seek
    still takes 5.5 ms on the simulated disk.  Left unscaled, the fixed seek
    cost would dwarf a full scan of the shrunken tables and every index-based
    plan would look useless -- an artifact of scaling, not of the access
    methods.  Dividing the seek cost by (roughly) the same factor as the data
    preserves the paper-scale ratio between random and sequential I/O, and
    with it the crossover points the experiments are about.  The per-dataset
    factors are documented in EXPERIMENTS.md.
    """
    if seek_scale <= 0:
        raise ValueError("seek_scale must be positive")
    base = DiskParameters()
    return DiskParameters(
        seek_cost_ms=base.seek_cost_ms / seek_scale,
        seq_page_cost_ms=base.seq_page_cost_ms,
        cpu_tuple_cost_ms=base.cpu_tuple_cost_ms,
    )


def scale_factor(default: float = 1.0) -> float:
    """The global scale multiplier from ``REPRO_SCALE`` (>= 0.05)."""
    raw = os.environ.get(SCALE_ENV_VAR, "")
    try:
        value = float(raw) if raw else default
    except ValueError:
        value = default
    return max(0.05, value)


@dataclass(frozen=True)
class ExperimentScale:
    """Row-count knobs shared by the benchmarks, all multiplied by ``factor``."""

    factor: float = 1.0

    def rows(self, base: int) -> int:
        return max(1, int(base * self.factor))

    @classmethod
    def from_environment(cls) -> "ExperimentScale":
        return cls(factor=scale_factor())


def _make_database(
    buffer_pool_pages: int, seek_scale: float, stats_sample_size: int | None
) -> Database:
    """A Database with scaled disk timing and optional statistics-sample cap.

    ``stats_sample_size=None`` keeps the engine default, which is large enough
    that every bundled data set gets exact (complete-sample) statistics; pass a
    smaller cap to exercise the estimated-statistics path at benchmark scale.
    """
    kwargs: dict[str, Any] = {
        "buffer_pool_pages": buffer_pool_pages,
        "disk_params": scaled_disk_parameters(seek_scale),
    }
    if stats_sample_size is not None:
        kwargs["stats_sample_size"] = stats_sample_size
    return Database(**kwargs)


# ---------------------------------------------------------------------------
# eBay (Experiments 1-4: Figures 6, 7, 8, 9, 10)
# ---------------------------------------------------------------------------

#: Seek-cost scale-down factors (see :func:`scaled_disk_parameters`): roughly
#: the ratio between the paper's table sizes and the benchmark defaults.
EBAY_SEEK_SCALE = 30.0
TPCH_SEEK_SCALE = 55.0
SDSS_SEEK_SCALE = 10.0


def build_ebay_database(
    scale: ExperimentScale | None = None,
    *,
    num_categories: int = 400,
    items_per_category: tuple[int, int] = (150, 250),
    buffer_pool_pages: int = 1_000,
    tups_per_page: int = 50,
    pages_per_bucket: int | None = 10,
    cluster_on: str = "catid",
    seek_scale: float = EBAY_SEEK_SCALE,
    seed: int = 42,
    stats_sample_size: int | None = None,
) -> tuple[Database, list[dict[str, Any]]]:
    """The ITEMS table clustered on CATID (the Experiment 1-4 setup)."""
    scale = scale or ExperimentScale.from_environment()
    config = EbayConfig(
        num_categories=scale.rows(num_categories),
        items_per_category=items_per_category,
        seed=seed,
    )
    rows = generate_items(config)
    db = _make_database(buffer_pool_pages, seek_scale, stats_sample_size)
    db.create_table("items", sample_row=rows[0], tups_per_page=tups_per_page)
    db.load("items", rows)
    db.cluster("items", cluster_on, pages_per_bucket=pages_per_bucket)
    return db, rows


def ebay_price_bucketer(level: int) -> WidthBucketer:
    """A Price bucketer holding ``2**level`` dollars per bucket.

    eBay prices are spread over $1M with most categories' items within a few
    hundred dollars of the category median, so dollar-width buckets are the
    natural analogue of the paper's "2^level tuples per bucket" knob.
    """
    return WidthBucketer(float(2 ** level))


# ---------------------------------------------------------------------------
# TPC-H lineitem (Section 3.4, Figures 1 and 3)
# ---------------------------------------------------------------------------

def build_tpch_database(
    scale: ExperimentScale | None = None,
    *,
    num_orders: int = 20_000,
    buffer_pool_pages: int = 1_000,
    tups_per_page: int = 60,
    cluster_on: str = "receiptdate",
    pages_per_bucket: int | None = 10,
    orderdate_span_days: int = 365,
    seek_scale: float = TPCH_SEEK_SCALE,
    seed: int = 7,
    stats_sample_size: int | None = None,
) -> tuple[Database, list[dict[str, Any]]]:
    """The lineitem table, by default clustered on receiptdate (correlated).

    The order-date span is shrunk together with the row count so that each
    ship/receipt date keeps a realistic number of rows (and therefore pages).
    """
    scale = scale or ExperimentScale.from_environment()
    config = TPCHConfig(
        num_orders=scale.rows(num_orders),
        num_parts=max(200, scale.rows(num_orders) // 5),
        num_suppliers=max(40, scale.rows(num_orders) // 100),
        orderdate_span_days=orderdate_span_days,
        seed=seed,
    )
    rows = generate_lineitem(config)
    db = _make_database(buffer_pool_pages, seek_scale, stats_sample_size)
    db.create_table("lineitem", sample_row=rows[0], tups_per_page=tups_per_page)
    db.load("lineitem", rows)
    db.cluster("lineitem", cluster_on, pages_per_bucket=pages_per_bucket)
    return db, rows


def build_tpch_join_database(
    scale: ExperimentScale | None = None,
    *,
    num_orders: int = 8_000,
    buffer_pool_pages: int = 1_500,
    tups_per_page: int = 60,
    orderdate_span_days: int = 365,
    cluster_orders_on: str | None = "orderkey",
    orders_pages_per_bucket: int | None = 10,
    seek_scale: float = TPCH_SEEK_SCALE,
    seed: int = 7,
    stats_sample_size: int | None = None,
) -> tuple[Database, list[dict[str, Any]], list[dict[str, Any]]]:
    """lineitem + orders, set up for the lineitem-orders join workload.

    ``lineitem`` is clustered on ``receiptdate`` (the correlated clustering
    the single-table experiments use) with a CM on the correlated predicate
    attribute ``shipdate``.  ``orders`` is clustered on ``cluster_orders_on``:

    * ``"orderkey"`` (default) -- join probes ride the clustered index;
    * ``"orderdate"`` -- the clustered key is the *date*; a CM on
      ``orderkey`` (correlated with ``orderdate`` by arrival order) gives
      the planner a CM-guided inner path instead;
    * ``None`` -- orders stays an unclustered, unindexed heap: the workload
      that exposes the quadratic nested-loop fallback and that the hash /
      sort-merge operators serve in O(N + M) pages.

    Returns ``(db, lineitem_rows, orders_rows)``.
    """
    scale = scale or ExperimentScale.from_environment()
    config = TPCHConfig(
        num_orders=scale.rows(num_orders),
        num_parts=max(200, scale.rows(num_orders) // 5),
        num_suppliers=max(40, scale.rows(num_orders) // 100),
        orderdate_span_days=orderdate_span_days,
        seed=seed,
    )
    lineitem_rows = generate_lineitem(config)
    orders_rows = generate_orders(config)
    db = _make_database(buffer_pool_pages, seek_scale, stats_sample_size)
    db.create_table("lineitem", sample_row=lineitem_rows[0], tups_per_page=tups_per_page)
    db.load("lineitem", lineitem_rows)
    db.cluster("lineitem", "receiptdate", pages_per_bucket=10)
    db.create_correlation_map("lineitem", ["shipdate"], name="cm_shipdate")
    db.create_table("orders", sample_row=orders_rows[0], tups_per_page=tups_per_page)
    db.load("orders", orders_rows)
    if cluster_orders_on is not None:
        db.cluster("orders", cluster_orders_on, pages_per_bucket=orders_pages_per_bucket)
    if cluster_orders_on == "orderdate":
        db.create_correlation_map("orders", ["orderkey"], name="cm_orderkey")
    return db, lineitem_rows, orders_rows


# ---------------------------------------------------------------------------
# SDSS PhotoObj / PhotoTag (Figures 1-2, Tables 3-6, Experiment 5)
# ---------------------------------------------------------------------------

def build_sdss_rows(
    scale: ExperimentScale | None = None,
    *,
    fields_ra: int = 32,
    fields_dec: int = 32,
    objects_per_field: int = 40,
    seed: int = 11,
) -> list[dict[str, Any]]:
    """Synthetic PhotoObj rows at benchmark scale (~40 k rows by default)."""
    scale = scale or ExperimentScale.from_environment()
    config = SDSSConfig(
        fields_ra=fields_ra,
        fields_dec=fields_dec,
        objects_per_field=scale.rows(objects_per_field),
        seed=seed,
    )
    return generate_photoobj(config)


def build_sdss_database(
    scale: ExperimentScale | None = None,
    *,
    buffer_pool_pages: int = 2_000,
    tups_per_page: int = 20,
    cluster_on: str = "objid",
    pages_per_bucket: int | None = 10,
    seek_scale: float = SDSS_SEEK_SCALE,
    stats_sample_size: int | None = None,
    **row_kwargs: Any,
) -> tuple[Database, list[dict[str, Any]]]:
    """The PhotoObj-style table clustered on objID (the Experiment 5 setup)."""
    rows = build_sdss_rows(scale, **row_kwargs)
    db = _make_database(buffer_pool_pages, seek_scale, stats_sample_size)
    db.create_table("photoobj", sample_row=rows[0], tups_per_page=tups_per_page)
    db.load("photoobj", rows)
    db.cluster("photoobj", cluster_on, pages_per_bucket=pages_per_bucket)
    return db, rows
