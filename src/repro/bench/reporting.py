"""Plain-text reporting of experiment results.

The benchmarks print the same rows and series the paper reports; these
helpers keep that output aligned and readable in the pytest-benchmark logs.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]], *, columns: Sequence[str] | None = None
) -> str:
    """Render rows of dictionaries as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns or rows[0].keys())
    rendered = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(value.ljust(width) for value, width in zip(line, widths))
        for line in rendered
    )
    return "\n".join([header, separator, body])


def format_series(
    series: Mapping[str, Sequence[Any]], *, x_label: str, x_values: Sequence[Any]
) -> str:
    """Render one or more y-series against shared x values (a text 'figure')."""
    rows = []
    for i, x in enumerate(x_values):
        row = {x_label: x}
        for name, values in series.items():
            row[name] = values[i] if i < len(values) else ""
        rows.append(row)
    return format_table(rows, columns=[x_label, *series.keys()])


def print_header(title: str) -> None:
    """Print a banner for one experiment (shows up in captured bench output)."""
    line = "=" * max(len(title) + 4, 40)
    print(f"\n{line}\n| {title}\n{line}")
