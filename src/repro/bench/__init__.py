"""Benchmark harness: shared builders and reporting for the experiments.

Every table and figure of the paper's evaluation section has a benchmark in
``benchmarks/`` that regenerates its rows or series.  This package holds the
pieces they share: scaled data-set/database builders (honouring the
``REPRO_SCALE`` environment variable) and plain-text table/series reporting.
"""

from repro.bench.harness import (
    ExperimentScale,
    build_ebay_database,
    build_sdss_database,
    build_tpch_database,
    scale_factor,
)
from repro.bench.reporting import format_series, format_table, print_header

__all__ = [
    "ExperimentScale",
    "scale_factor",
    "build_ebay_database",
    "build_tpch_database",
    "build_sdss_database",
    "format_table",
    "format_series",
    "print_header",
]
