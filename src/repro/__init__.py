"""Correlation Maps: a compressed access method for exploiting soft functional
dependencies -- a full reproduction of Kimura et al., VLDB 2009.

The package is organised in layers:

* :mod:`repro.storage`, :mod:`repro.index`, :mod:`repro.sampling` -- the
  substrates (simulated disk, heap files, buffer pool, WAL, B+Trees,
  cardinality estimators) standing in for PostgreSQL and the test machine.
* :mod:`repro.core` -- the paper's contribution: the correlation-aware cost
  model, the Correlation Map structure, bucketing, and the CM Advisor.
* :mod:`repro.engine` -- a query execution engine that plans and runs
  sequential, index, and CM-based scans and maintains every structure under
  updates.
* :mod:`repro.datasets` -- synthetic eBay / TPC-H / SDSS data generators and
  the experiment workloads.
* :mod:`repro.bench` -- shared builders and reporting for the benchmark
  suite under ``benchmarks/``.

Quickstart::

    from repro import Database, Query, Between, Aggregate, WidthBucketer

    db = Database(buffer_pool_pages=2_000)
    db.create_table("items", sample_row=rows[0])
    db.load("items", rows)
    db.cluster("items", "catid", pages_per_bucket=10)
    db.create_correlation_map("items", ["price"],
                              bucketers={"price": WidthBucketer(64.0)})
    result = db.query(Query.select("items", Between("price", 1000, 1100),
                                   aggregate=Aggregate.count()))
"""

from repro.core.advisor import CMAdvisor, CMDesign, Recommendation, TrainingQuery
from repro.core.bucketing import IdentityBucketer, QuantileBucketer, WidthBucketer
from repro.core.clustering_advisor import ClusteringAdvisor
from repro.core.composite import CompositeKeySpec, ValueConstraint
from repro.core.correlation_map import CorrelationMap
from repro.core.cost import (
    cm_lookup_cost,
    pipelined_lookup_cost,
    scan_cost,
    sorted_lookup_cost,
)
from repro.core.model import CorrelationProfile, HardwareParameters, TableProfile
from repro.engine.database import Database
from repro.engine.executor import DEFAULT_BATCH_SIZE, RowBatch
from repro.engine.partition import PartitionSpec
from repro.engine.predicates import Between, Equals, InSet, PredicateSet
from repro.engine.query import Aggregate, JoinSpec, Query, QueryResult

__version__ = "0.1.0"

__all__ = [
    "Database",
    "DEFAULT_BATCH_SIZE",
    "RowBatch",
    "Query",
    "QueryResult",
    "JoinSpec",
    "Aggregate",
    "PartitionSpec",
    "Equals",
    "InSet",
    "Between",
    "PredicateSet",
    "CorrelationMap",
    "CompositeKeySpec",
    "ValueConstraint",
    "WidthBucketer",
    "IdentityBucketer",
    "QuantileBucketer",
    "CMAdvisor",
    "CMDesign",
    "Recommendation",
    "TrainingQuery",
    "ClusteringAdvisor",
    "HardwareParameters",
    "TableProfile",
    "CorrelationProfile",
    "scan_cost",
    "sorted_lookup_cost",
    "pipelined_lookup_cost",
    "cm_lookup_cost",
    "__version__",
]
